package trace

import (
	"strings"
	"testing"

	"repro/internal/fsdp"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/vit"
)

func sampleResult(t *testing.T, plan fsdp.Plan) (fsdp.Result, hw.Machine) {
	t.Helper()
	m := hw.Frontier()
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	r, err := fsdp.Simulate(w, m, 32, plan)
	if err != nil {
		t.Fatal(err)
	}
	return r, m
}

func TestTraceBounds(t *testing.T) {
	r, m := sampleResult(t, fsdp.BestPractice(fsdp.HybridShard, 2))
	tr := FromResult(r, m, DefaultOptions())
	if len(tr.Samples) != 120 {
		t.Fatalf("samples=%d want 120", len(tr.Samples))
	}
	for _, s := range tr.Samples {
		if s.PowerW < m.IdlePower || s.PowerW > m.MaxPower {
			t.Fatalf("power %v outside [idle, max]", s.PowerW)
		}
		if s.UtilPct < 0 || s.UtilPct > 100 {
			t.Fatalf("util %v outside [0, 100]", s.UtilPct)
		}
		if s.MemoryBytes <= 0 || s.MemoryBytes > m.HBMBytesPerGPU {
			t.Fatalf("memory %v outside (0, HBM]", s.MemoryBytes)
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	r, m := sampleResult(t, fsdp.BestPractice(fsdp.FullShard, 0))
	a := FromResult(r, m, DefaultOptions())
	b := FromResult(r, m, DefaultOptions())
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestHighUtilizationMatchesPaper(t *testing.T) {
	// Paper: "GPU utilization is approximately 100%" for synthetic runs.
	r, m := sampleResult(t, fsdp.BestPractice(fsdp.ShardGradOp, 0))
	tr := FromResult(r, m, DefaultOptions())
	if tr.MeanUtil() < 80 {
		t.Fatalf("mean util %v, want ≈100%%", tr.MeanUtil())
	}
}

func TestPowerOrderingMatchesThroughput(t *testing.T) {
	// Figure 4: SHARD_GRAD_OP draws more power than FULL_SHARD.
	rs, m := sampleResult(t, fsdp.BestPractice(fsdp.ShardGradOp, 0))
	rf, _ := sampleResult(t, fsdp.BestPractice(fsdp.FullShard, 0))
	ts := FromResult(rs, m, DefaultOptions())
	tf := FromResult(rf, m, DefaultOptions())
	if rs.ImagesPerSec > rf.ImagesPerSec && ts.MeanPower() <= tf.MeanPower() {
		t.Fatalf("power ordering: SHARD_GRAD_OP %.1f W ≤ FULL_SHARD %.1f W despite higher throughput",
			ts.MeanPower(), tf.MeanPower())
	}
}

func TestMemoryTraceMatchesModel(t *testing.T) {
	r, m := sampleResult(t, fsdp.BestPractice(fsdp.HybridShard, 2))
	tr := FromResult(r, m, DefaultOptions())
	for _, s := range tr.Samples {
		rel := s.MemoryBytes / r.MemoryPerGPU
		if rel < 0.95 || rel > 1.05 {
			t.Fatalf("trace memory %.1f GB deviates from model %.1f GB", s.MemoryBytes/1e9, r.MemoryPerGPU/1e9)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	r, m := sampleResult(t, fsdp.BestPractice(fsdp.HybridShard, 2))
	csv := FromResult(r, m, Options{DurationSec: 3, IntervalSec: 1, Seed: 1}).RenderCSV()
	if !strings.Contains(csv, "time_s,power_w,memory_gb,gpu_util_pct") {
		t.Fatal("missing header")
	}
	if strings.Count(csv, "\n") != 5 { // comment + header + 3 rows
		t.Fatalf("unexpected line count in:\n%s", csv)
	}
}

func TestOptionDefaultsApplied(t *testing.T) {
	r, m := sampleResult(t, fsdp.BestPractice(fsdp.HybridShard, 2))
	tr := FromResult(r, m, Options{Seed: 1}) // zero duration/interval
	if len(tr.Samples) != 60 {
		t.Fatalf("default window gave %d samples", len(tr.Samples))
	}
}

// TestExecBreakdown pins the executed step-time decomposition: wall
// splits into compute + exposed comm, per-step means and the exposed
// fraction follow, and a negative residual clamps instead of going
// nonsensical.
func TestExecBreakdown(t *testing.T) {
	b := NewExecBreakdown("ddp/8", 4, 2.0, 0.5)
	if b.ComputeSec != 1.5 {
		t.Fatalf("compute %v, want 1.5", b.ComputeSec)
	}
	if got := b.StepSec(); got != 0.5 {
		t.Fatalf("step time %v, want 0.5", got)
	}
	if got := b.ExposedStepSec(); got != 0.125 {
		t.Fatalf("exposed/step %v, want 0.125", got)
	}
	if got := b.ExposedFrac(); got != 0.25 {
		t.Fatalf("exposed frac %v, want 0.25", got)
	}
	if s := b.String(); !strings.Contains(s, "ddp/8") || !strings.Contains(s, "exposed") {
		t.Fatalf("report %q missing label or decomposition", s)
	}
	// Degenerate inputs stay finite and clamped.
	z := NewExecBreakdown("z", 0, 0, 1)
	if z.ComputeSec != 0 || z.StepSec() != 0 || z.ExposedFrac() != 0 {
		t.Fatalf("degenerate breakdown not clamped: %+v", z)
	}
}

// TestExecBreakdownMirrorsSimulator: the executed decomposition's
// invariant matches the simulator's — exposed communication never
// exceeds the wall, and hiding communication shrinks the exposed
// fraction at constant traffic, which is the comparison bench-dist
// records for overlap on/off.
func TestExecBreakdownMirrorsSimulator(t *testing.T) {
	sync := NewExecBreakdown("overlap=off", 10, 3.0, 1.2)
	over := NewExecBreakdown("overlap=on", 10, 2.1, 0.3)
	if !(over.ExposedFrac() < sync.ExposedFrac()) {
		t.Fatal("overlapped breakdown does not show a lower exposed fraction")
	}
	for _, b := range []ExecBreakdown{sync, over} {
		if b.ExposedCommSec > b.WallSec {
			t.Fatalf("%s: exposed %v exceeds wall %v", b.Label, b.ExposedCommSec, b.WallSec)
		}
	}
}
