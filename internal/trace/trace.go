// Package trace synthesizes rocm-smi-style GPU telemetry traces —
// power, memory and utilization sampled at a fixed cadence — from a
// simulated training step, reproducing the bottom panel of the paper's
// Figure 4. A trace replays the step's phase structure (forward ramp,
// backward with communication overlap, optimizer dip) cyclically over
// the sampling window, with deterministic per-sample jitter standing in
// for sensor noise.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/fsdp"
	"repro/internal/hw"
	"repro/internal/rng"
)

// Sample is one telemetry reading for one GCD.
type Sample struct {
	TimeSec     float64
	PowerW      float64
	MemoryBytes float64
	UtilPct     float64
}

// Trace is a time series of samples for one configuration.
type Trace struct {
	Label   string
	Samples []Sample
}

// Options controls trace synthesis.
type Options struct {
	// DurationSec is the wall-clock window to cover.
	DurationSec float64
	// IntervalSec is the sampling cadence (rocm-smi default ≈ 1 s).
	IntervalSec float64
	Seed        uint64
}

// DefaultOptions mirrors the paper's trace window.
func DefaultOptions() Options {
	return Options{DurationSec: 120, IntervalSec: 1, Seed: 17}
}

// FromResult synthesizes a telemetry trace for the training
// configuration summarized by r.
func FromResult(r fsdp.Result, m hw.Machine, opts Options) Trace {
	if opts.IntervalSec <= 0 {
		opts.IntervalSec = 1
	}
	if opts.DurationSec <= 0 {
		opts.DurationSec = 60
	}
	g := rng.New(opts.Seed ^ uint64(len(r.Plan.Name())))
	tr := Trace{Label: r.Plan.Name()}

	// Phase fractions of one step: forward (compute ramp), backward
	// (compute + overlapped communication), exposed communication, and
	// the optimizer tail.
	step := r.StepTime
	if step <= 0 {
		step = 1
	}
	fwdFrac := r.ComputeTime / 3 / step
	exposedFrac := r.ExposedComm / step
	optFrac := 0.02
	bwdFrac := 1 - fwdFrac - exposedFrac - optFrac
	if bwdFrac < 0 {
		bwdFrac = 0
	}

	for t := 0.0; t < opts.DurationSec; t += opts.IntervalSec {
		phase := (t / step) - float64(int(t/step)) // position within a step
		var power, util float64
		switch {
		case phase < fwdFrac:
			power = r.AvgPowerPerGPU * 1.05
			util = 100 * r.GPUUtilization
		case phase < fwdFrac+bwdFrac:
			power = r.AvgPowerPerGPU * 1.02
			util = 100 * r.GPUUtilization
		case phase < fwdFrac+bwdFrac+exposedFrac:
			// Exposed communication: utilization stays pinned (RCCL
			// kernels occupy CUs) but power sags.
			power = m.IdlePower + (r.AvgPowerPerGPU-m.IdlePower)*0.6
			util = 100 * r.GPUUtilization
		default:
			power = m.IdlePower + (r.AvgPowerPerGPU-m.IdlePower)*0.4
			util = 60
		}
		power += 6 * g.NormFloat64()
		util += 1.2 * g.NormFloat64()
		if power < m.IdlePower {
			power = m.IdlePower
		}
		if power > m.MaxPower {
			power = m.MaxPower
		}
		if util > 100 {
			util = 100
		}
		if util < 0 {
			util = 0
		}
		mem := r.MemoryPerGPU * (1 + 0.005*g.NormFloat64())
		if mem > m.HBMBytesPerGPU {
			mem = m.HBMBytesPerGPU
		}
		tr.Samples = append(tr.Samples, Sample{TimeSec: t, PowerW: power, MemoryBytes: mem, UtilPct: util})
	}
	return tr
}

// ExecBreakdown decomposes an *executed* training run's wall-clock
// into compute and exposed communication — the measured counterpart of
// the simulator's Result.ComputeTime/ExposedComm split. Where
// fsdp.Simulate predicts how much collective latency a schedule hides
// behind backward compute, an ExecBreakdown reports how much a real
// run (train.PretrainDistributed, which times every per-step
// collective block and async-handle wait on rank 0) actually hid: with
// overlap off ExposedCommSec approaches the full collective time, with
// overlap on it shrinks toward the unhidable residual.
type ExecBreakdown struct {
	Label string
	// Steps is the number of optimizer steps the run executed.
	Steps int
	// WallSec = ComputeSec + ExposedCommSec: rank 0's training-loop
	// wall-clock, the time it spent blocked in collectives (exposed
	// communication), and the remainder (compute + input pipeline).
	WallSec, ComputeSec, ExposedCommSec float64
}

// NewExecBreakdown builds the decomposition from a run's wall-clock
// and its exposed-communication time.
func NewExecBreakdown(label string, steps int, wallSec, exposedSec float64) ExecBreakdown {
	b := ExecBreakdown{Label: label, Steps: steps, WallSec: wallSec, ExposedCommSec: exposedSec}
	b.ComputeSec = wallSec - exposedSec
	if b.ComputeSec < 0 {
		b.ComputeSec = 0
	}
	return b
}

// StepSec returns the mean wall-clock per optimizer step.
func (b ExecBreakdown) StepSec() float64 {
	if b.Steps == 0 {
		return 0
	}
	return b.WallSec / float64(b.Steps)
}

// ExposedStepSec returns the mean exposed-communication time per
// optimizer step — the executed analog of Result.ExposedComm.
func (b ExecBreakdown) ExposedStepSec() float64 {
	if b.Steps == 0 {
		return 0
	}
	return b.ExposedCommSec / float64(b.Steps)
}

// ExposedFrac returns the fraction of wall-clock spent in exposed
// communication.
func (b ExecBreakdown) ExposedFrac() float64 {
	if b.WallSec <= 0 {
		return 0
	}
	return b.ExposedCommSec / b.WallSec
}

// String renders the one-line report the training CLI prints.
func (b ExecBreakdown) String() string {
	return fmt.Sprintf("%s: %.1f ms/step (compute %.1f ms, exposed comm %.1f ms, %.0f%% exposed)",
		b.Label, 1e3*b.StepSec(), 1e3*b.ComputeSec/max(float64(b.Steps), 1),
		1e3*b.ExposedStepSec(), 100*b.ExposedFrac())
}

// Agreement is one executed-vs-predicted comparison: a measured
// quantity from an ExecBreakdown next to the calibrated simulator's
// prediction of the same quantity. The calibration validation suite
// (internal/calib) builds one per compared metric and holds the ratio
// within a stated tolerance factor.
type Agreement struct {
	Label        string
	MeasuredSec  float64
	PredictedSec float64
	// FloorSec is the magnitude below which the two sides are compared
	// as "both negligible" instead of by ratio: timing noise dominates
	// micro-second-scale quantities, so a ratio there is meaningless.
	FloorSec float64
}

// Ratio returns measured/predicted (0 when the prediction is not
// positive).
func (a Agreement) Ratio() float64 {
	if a.PredictedSec <= 0 {
		return 0
	}
	return a.MeasuredSec / a.PredictedSec
}

// Within reports whether the two sides agree within the tolerance
// factor tol ≥ 1: either both sit below FloorSec (negligible on both
// accounts), or the ratio lies in [1/tol, tol].
func (a Agreement) Within(tol float64) bool {
	if tol < 1 {
		return false
	}
	if a.MeasuredSec <= a.FloorSec && a.PredictedSec <= a.FloorSec {
		return true
	}
	if a.MeasuredSec <= 0 || a.PredictedSec <= 0 {
		return false
	}
	r := a.Ratio()
	return r <= tol && r >= 1/tol
}

// String renders the comparison line the validation report prints.
func (a Agreement) String() string {
	return fmt.Sprintf("%s: measured %.2f ms, predicted %.2f ms (×%.2f)",
		a.Label, 1e3*a.MeasuredSec, 1e3*a.PredictedSec, a.Ratio())
}

// RequestTrace is the per-request latency decomposition the serving
// stack (internal/serve) stamps at its trace points: admission into
// the queue, batch close (the dynamic batcher's form event), compute
// launch on an engine, and completion. Times are seconds on the
// server's clock — wall for the executed server, virtual for the
// deterministic driver and the serving simulator — so the same type
// carries both sides of the measured-vs-modeled comparison.
type RequestTrace struct {
	ID              uint64
	ArrivalSec      float64
	BatchFormSec    float64
	ComputeStartSec float64
	DoneSec         float64
}

// QueueWaitSec is the time from admission to compute launch — the
// batcher-induced wait (waiting for the batch to close, plus the
// closed batch waiting for a free engine).
func (r RequestTrace) QueueWaitSec() float64 { return r.ComputeStartSec - r.ArrivalSec }

// FormWaitSec is the portion of the queue wait spent before the batch
// closed (bounded by the batcher's max-wait deadline).
func (r RequestTrace) FormWaitSec() float64 { return r.BatchFormSec - r.ArrivalSec }

// DispatchWaitSec is the portion spent after close, waiting for an
// engine (nonzero only when every engine is busy).
func (r RequestTrace) DispatchWaitSec() float64 { return r.ComputeStartSec - r.BatchFormSec }

// ComputeSec is the batch execution time the request rode along with.
func (r RequestTrace) ComputeSec() float64 { return r.DoneSec - r.ComputeStartSec }

// TotalSec is admission-to-completion latency.
func (r RequestTrace) TotalSec() float64 { return r.DoneSec - r.ArrivalSec }

// MeanPower returns the trace's average power draw.
func (t Trace) MeanPower() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range t.Samples {
		s += v.PowerW
	}
	return s / float64(len(t.Samples))
}

// MeanUtil returns the trace's average utilization percentage.
func (t Trace) MeanUtil() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range t.Samples {
		s += v.UtilPct
	}
	return s / float64(len(t.Samples))
}

// RenderCSV formats the trace as rocm-smi-like CSV
// (time,power_w,mem_gb,util_pct).
func (t Trace) RenderCSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Label)
	b.WriteString("time_s,power_w,memory_gb,gpu_util_pct\n")
	for _, s := range t.Samples {
		fmt.Fprintf(&b, "%.1f,%.1f,%.2f,%.1f\n", s.TimeSec, s.PowerW, s.MemoryBytes/1e9, s.UtilPct)
	}
	return b.String()
}
