//go:build !amd64 || purego

package hw

// detectFeatures reports no SIMD extensions: either the target is not
// amd64 or the purego tag excluded the assembly kernels, and in both
// cases internal/tensor runs its portable Go paths.
func detectFeatures() Features {
	return Features{PureGo: true}
}
