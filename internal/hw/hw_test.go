package hw

import "testing"

func TestFrontierPublishedConstants(t *testing.T) {
	m := Frontier()
	// Section III-B of the paper: 9408 nodes, 8 GCDs ("GPUs") per node,
	// 64 GB HBM each, IF 50 GB/s, Slingshot 100 GB/s.
	if m.MaxNodes != 9408 {
		t.Errorf("MaxNodes=%d", m.MaxNodes)
	}
	if m.GPUsPerNode != 8 {
		t.Errorf("GPUsPerNode=%d", m.GPUsPerNode)
	}
	if m.HBMBytesPerGPU != 64e9 {
		t.Errorf("HBM=%v", m.HBMBytesPerGPU)
	}
	if m.IntraNodeBW != 50e9 {
		t.Errorf("IntraNodeBW=%v", m.IntraNodeBW)
	}
	if m.InterNodeBWPerNode != 100e9 {
		t.Errorf("InterNodeBW=%v", m.InterNodeBWPerNode)
	}
}

func TestEffectiveFLOPS(t *testing.T) {
	m := Frontier()
	eff := m.EffectiveFLOPS()
	if eff <= 0 || eff >= m.PeakMatrixFLOPS {
		t.Fatalf("effective FLOPS %v outside (0, peak)", eff)
	}
	if m.MFU <= 0 || m.MFU > 1 {
		t.Fatalf("MFU %v", m.MFU)
	}
}

func TestTotalGPUs(t *testing.T) {
	m := Frontier()
	if m.TotalGPUs(64) != 512 {
		t.Fatalf("TotalGPUs(64)=%d", m.TotalGPUs(64))
	}
}

func TestInterBWPerGPU(t *testing.T) {
	m := Frontier()
	if got := m.InterBWPerGPU(); got != 100e9/8 {
		t.Fatalf("InterBWPerGPU=%v", got)
	}
}

func TestGroupBandwidthTiers(t *testing.T) {
	m := Frontier()
	// Pair of GCDs in one package → fastest tier.
	bw, lat, _ := m.GroupBandwidth(2, 8, 1)
	if bw != m.PairBW || lat != m.IntraHopLatency {
		t.Fatalf("pair tier: bw=%v lat=%v", bw, lat)
	}
	// Group of 8 within node → Infinity Fabric tier.
	bw, _, _ = m.GroupBandwidth(8, 8, 1)
	if bw != m.IntraNodeBW {
		t.Fatalf("node tier: bw=%v", bw)
	}
	// Spanning group with 8 concurrent spanning groups per node → NIC/8.
	bw, lat, _ = m.GroupBandwidth(64, 8, 8)
	if bw != m.InterNodeBWPerNode/8 {
		t.Fatalf("spanning tier: bw=%v", bw)
	}
	if lat != m.InterHopLatency {
		t.Fatalf("spanning lat=%v", lat)
	}
	// Single spanning group is still capped at the intra tier.
	bw, _, _ = m.GroupBandwidth(64, 8, 1)
	if bw > m.IntraNodeBW {
		t.Fatalf("spanning bw %v exceeds intra ceiling", bw)
	}
	// Degenerate group of one.
	_, lat, _ = m.GroupBandwidth(1, 8, 1)
	if lat != 0 {
		t.Fatalf("singleton group lat=%v", lat)
	}
}

func TestBandwidthTierOrdering(t *testing.T) {
	m := Frontier()
	pair, _, _ := m.GroupBandwidth(2, 8, 1)
	intra, _, _ := m.GroupBandwidth(8, 8, 1)
	inter, _, _ := m.GroupBandwidth(16, 8, 8)
	if !(pair > intra && intra > inter) {
		t.Fatalf("tier ordering violated: %v %v %v", pair, intra, inter)
	}
}

func TestPowerModelRange(t *testing.T) {
	m := Frontier()
	if !(m.IdlePower > 0 && m.IdlePower < m.MaxPower) {
		t.Fatalf("power model: idle=%v max=%v", m.IdlePower, m.MaxPower)
	}
	if m.SMContention < 0 || m.SMContention > 0.5 {
		t.Fatalf("SMContention=%v implausible", m.SMContention)
	}
}
