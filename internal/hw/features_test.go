package hw

import (
	"runtime"
	"strings"
	"testing"
)

func TestDetectMemoizedAndPopulated(t *testing.T) {
	f := Detect()
	if f != Detect() {
		t.Fatal("Detect is not stable across calls")
	}
	if f.Arch != runtime.GOARCH || f.OS != runtime.GOOS {
		t.Fatalf("arch/os = %s/%s, want %s/%s", f.Arch, f.OS, runtime.GOARCH, runtime.GOOS)
	}
	if f.LogicalCores < 1 || f.MaxProcs < 1 {
		t.Fatalf("cores=%d maxprocs=%d", f.LogicalCores, f.MaxProcs)
	}
}

func TestSIMDGateConsistency(t *testing.T) {
	f := Detect()
	if f.PureGo && f.SIMD() {
		t.Fatal("SIMD reported usable under a purego/non-amd64 build")
	}
	if f.SIMD() != (!f.PureGo && f.AVX2 && f.FMA && f.OSYMM) {
		t.Fatal("SIMD() disagrees with its component flags")
	}
	want := "generic"
	if f.SIMD() {
		want = "avx2+fma"
	}
	if f.KernelISA() != want {
		t.Fatalf("KernelISA=%q, want %q", f.KernelISA(), want)
	}
	if !strings.Contains(f.String(), f.KernelISA()) {
		t.Fatalf("String()=%q does not name the kernel ISA", f.String())
	}
}
