//go:build amd64 && !purego

package hw

// cpuid executes the CPUID instruction for the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

// detectFeatures probes CPUID for the extensions the assembly kernels
// need: FMA3 and AVX2 in the CPU, OSXSAVE with XMM+YMM state saving
// enabled in the OS.
func detectFeatures() Features {
	var f Features
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return f
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	f.FMA = c1&fmaBit != 0
	if c1&osxsaveBit != 0 && c1&avxBit != 0 {
		if xcr0, _ := xgetbv(); xcr0&6 == 6 { // XMM and YMM state enabled
			f.OSYMM = true
		}
	}
	_, b7, _, _ := cpuid(7, 0)
	f.AVX2 = b7&(1<<5) != 0
	return f
}
