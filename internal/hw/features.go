package hw

import (
	"fmt"
	"runtime"
	"sync"
)

// Features describes the capabilities of the CPU this process runs on
// — the one queryable record of what the host can do. The SIMD kernel
// dispatch in internal/tensor gates its assembly paths on SIMD(), and
// the calibration harness (internal/calib, cmd/calibrate) stamps the
// struct into every HardwareProfile so a profile is never silently
// applied on a machine whose kernels run a different code path.
type Features struct {
	// Arch is runtime.GOARCH; OS is runtime.GOOS.
	Arch string
	OS   string
	// AVX2, FMA and OSYMM report the instruction-set extensions the
	// GEMM/bf16 micro-kernels need: AVX2 and FMA3 support in the CPU,
	// and YMM state saving enabled in the OS (XGETBV). All false on
	// non-amd64 builds and under the purego tag.
	AVX2, FMA, OSYMM bool
	// PureGo reports the build excluded the assembly kernels (the
	// purego build tag or a non-amd64 target), regardless of what the
	// CPU supports.
	PureGo bool
	// LogicalCores is runtime.NumCPU() at detection time; MaxProcs is
	// the GOMAXPROCS ceiling the worker pool sizes itself to.
	LogicalCores int
	MaxProcs     int
}

// SIMD reports whether the hand-written AVX2+FMA kernels are usable:
// the single gate every assembly path in internal/tensor switches on.
func (f Features) SIMD() bool {
	return !f.PureGo && f.AVX2 && f.FMA && f.OSYMM
}

// KernelISA names the instruction set the numeric kernels execute with.
func (f Features) KernelISA() string {
	if f.SIMD() {
		return "avx2+fma"
	}
	return "generic"
}

// String renders the one-line host summary the calibration CLI prints.
func (f Features) String() string {
	return fmt.Sprintf("%s/%s %s (%d cores, GOMAXPROCS %d)",
		f.OS, f.Arch, f.KernelISA(), f.LogicalCores, f.MaxProcs)
}

var (
	detectOnce sync.Once
	detected   Features
)

// Detect returns the host's CPU features. The probe runs once; every
// caller sees the same struct, so the kernel dispatch and the
// calibration harness cannot disagree about what the machine supports.
func Detect() Features {
	detectOnce.Do(func() {
		detected = detectFeatures()
		detected.Arch = runtime.GOARCH
		detected.OS = runtime.GOOS
		detected.LogicalCores = runtime.NumCPU()
		detected.MaxProcs = runtime.GOMAXPROCS(0)
	})
	return detected
}
