// Package hw models the hardware the paper measures on: the Frontier
// supercomputer at OLCF. A Machine captures the quantities the
// performance simulation needs — GCD count and memory, effective
// training FLOP rate, the three bandwidth tiers of the interconnect
// (same-package GCD pair via Infinity Fabric, cross-package intra-node
// Infinity Fabric, inter-node Slingshot-11), per-hop collective
// latencies, and a simple power model.
//
// Published constants are taken from the paper's Section III-B and the
// MI250X datasheet; calibration constants (MFU, latencies, contention)
// are chosen once so that absolute throughputs land in the paper's
// reported range (≈1.5k images/s for ViT-5B on 32 nodes) and are
// documented in EXPERIMENTS.md. The *shapes* of all figures come from
// the model structure, not from these constants.
package hw

// Machine describes one homogeneous GPU cluster.
type Machine struct {
	Name        string
	MaxNodes    int
	GPUsPerNode int // GCDs per node: the paper treats each GCD as a GPU

	// HBMBytesPerGPU is the memory capacity per GCD.
	HBMBytesPerGPU float64
	// HBMBandwidth is the per-GCD memory bandwidth (bytes/s), used for
	// optimizer-step and bucket-copy costs.
	HBMBandwidth float64

	// PeakMatrixFLOPS is the per-GCD peak throughput for training math.
	PeakMatrixFLOPS float64
	// MFU is the achieved fraction of peak for transformer training
	// (model FLOPs utilization).
	MFU float64

	// Bandwidths in bytes/s.
	PairBW             float64 // two GCDs of one MI250X package
	IntraNodeBW        float64 // Infinity Fabric between packages
	InterNodeBWPerNode float64 // Slingshot-11 NIC budget per node

	// Per-hop latencies for ring collectives (seconds).
	IntraHopLatency float64
	InterHopLatency float64
	// Per-chunk protocol overhead (bytes) for ring collectives on each
	// tier — see comm.Params.ChunkOverheadBytes.
	IntraChunkOverhead float64
	InterChunkOverhead float64
	// CollectiveLaunch is the fixed host-side cost per collective call.
	CollectiveLaunch float64

	// SMContention is the fractional compute slowdown while collective
	// kernels run concurrently (RCCL consumes compute units).
	SMContention float64

	// Power model per GCD (watts).
	IdlePower float64
	MaxPower  float64
	// CommPowerFrac scales how much communication-only activity
	// contributes to power relative to full compute.
	CommPowerFrac float64

	// Calibrated marks a machine whose constants were *measured* on a
	// live host (internal/calib builds these from a HardwareProfile)
	// rather than asserted from datasheets. The FSDP simulator then
	// skips the Frontier-specific fudge constants — per-strategy host
	// overheads, the limit_all_gathers congestion penalty and the
	// at-scale straggler inflation — because a measured collective α
	// already contains every end-to-end fixed cost of a call on that
	// host. False (the default) preserves the published-figure path
	// bit for bit.
	Calibrated bool
}

// Frontier returns the machine model for the paper's system:
// 9408 nodes, one 64-core EPYC plus four MI250X (8 GCDs) per node,
// 64 GB HBM per GCD, Infinity Fabric GPU-GPU at 50 GB/s,
// Slingshot-11 at 100 GB/s per node.
func Frontier() Machine {
	return Machine{
		Name:        "Frontier",
		MaxNodes:    9408,
		GPUsPerNode: 8,

		HBMBytesPerGPU: 64e9,
		HBMBandwidth:   1.6e12,

		// MI250X: 383 TFLOPS fp16/bf16 matrix per module → 191.5 per GCD.
		PeakMatrixFLOPS: 191.5e12,
		MFU:             0.22,

		PairBW:             200e9, // in-package Infinity Fabric
		IntraNodeBW:        50e9,  // paper: IF GPU-GPU 50 GB/s
		InterNodeBWPerNode: 100e9, // paper: Slingshot-11 100 GB/s

		IntraHopLatency:    1.5e-6,
		InterHopLatency:    2e-6,
		IntraChunkOverhead: 8e3,
		InterChunkOverhead: 24e3,
		CollectiveLaunch:   2e-5,

		SMContention: 0.12,

		IdlePower:     90,
		MaxPower:      280, // 560 W per MI250X module / 2 GCDs
		CommPowerFrac: 0.35,
	}
}

// DefaultHost returns an asserted laptop-class single host for the
// serving stack's default batch-latency curve: one engine, no
// interconnect to speak of, constants round enough to read p50/p99
// tables against. Like Frontier these are asserted, not measured —
// internal/calib's MachineFor replaces them with a live profile, and
// Calibrated stays false here so consumers can tell the difference.
func DefaultHost() Machine {
	return Machine{
		Name:        "asserted-host",
		MaxNodes:    1,
		GPUsPerNode: 1,

		HBMBytesPerGPU: 16e9,
		HBMBandwidth:   40e9,

		PeakMatrixFLOPS: 200e9, // a few AVX2 cores' worth of fp32 GEMM
		MFU:             0.5,

		PairBW:             10e9,
		IntraNodeBW:        10e9,
		InterNodeBWPerNode: 10e9,

		IntraHopLatency:    1e-6,
		InterHopLatency:    1e-6,
		IntraChunkOverhead: 4e3,
		InterChunkOverhead: 4e3,
		CollectiveLaunch:   3e-4,

		SMContention: 0,

		IdlePower:     10,
		MaxPower:      45,
		CommPowerFrac: 0.2,
	}
}

// EffectiveFLOPS returns the usable per-GCD training throughput.
func (m Machine) EffectiveFLOPS() float64 {
	return m.PeakMatrixFLOPS * m.MFU
}

// InferLatency models one serving engine's batch step time as the α–β
// curve τ(b) = launch + b·flopsPerItem/EffectiveFLOPS(): a fixed
// host-side launch cost (kernel dispatch, batch gather — reusing the
// machine's measured-or-asserted CollectiveLaunch as the per-call
// fixed cost) plus compute at the effective FLOP rate. This is the
// batch-size-dependent step latency the serving simulator prices
// batches with; internal/calib profiles yield a calibrated curve
// through the same method.
func (m Machine) InferLatency(flopsPerItem float64, batch int) float64 {
	if batch <= 0 {
		return 0
	}
	return m.CollectiveLaunch + float64(batch)*flopsPerItem/m.EffectiveFLOPS()
}

// TotalGPUs returns the GCD count for a given node count.
func (m Machine) TotalGPUs(nodes int) int { return nodes * m.GPUsPerNode }

// InterBWPerGPU is the NIC share per GCD when every GCD on a node
// communicates across nodes simultaneously — the common case for the
// spanning collectives in this paper's workloads.
func (m Machine) InterBWPerGPU() float64 {
	return m.InterNodeBWPerNode / float64(m.GPUsPerNode)
}

// GroupBandwidth returns the effective ring bandwidth and per-hop
// latency for a collective over a group of the given size, given how
// the group's ranks are laid out (ranksPerNode of the group co-located
// on each node).
//
//   - group of 2 inside one package  → PairBW
//   - group within one node          → IntraNodeBW
//   - group spanning nodes           → NIC share (each node's boundary
//     link carries the ring stream; concurrent spanning groups from the
//     same node divide the NIC)
func (m Machine) GroupBandwidth(groupSize, ranksPerNode, concurrentSpanningGroups int) (bw, hopLat, chunkOverhead float64) {
	if groupSize <= 1 {
		return m.PairBW, 0, 0
	}
	if groupSize <= ranksPerNode {
		if groupSize == 2 {
			return m.PairBW, m.IntraHopLatency, m.IntraChunkOverhead
		}
		return m.IntraNodeBW, m.IntraHopLatency, m.IntraChunkOverhead
	}
	if concurrentSpanningGroups < 1 {
		concurrentSpanningGroups = 1
	}
	bw = m.InterNodeBWPerNode / float64(concurrentSpanningGroups)
	if bw > m.IntraNodeBW {
		bw = m.IntraNodeBW
	}
	return bw, m.InterHopLatency, m.InterChunkOverhead
}
