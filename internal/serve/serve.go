// Package serve is the inference side of the north star: a
// request-driven server over a trained checkpoint that answers the
// three downstream workloads — encoder embeddings, linear-probe
// classification, and per-patch segmentation — behind a dynamic
// batcher. Requests enter a bounded admission queue (overflow sheds),
// the batcher closes a batch when it reaches MaxBatch requests or the
// oldest waiting request ages past MaxWait, and closed batches run
// FIFO on a fixed pool of inference engines that share one read-only
// copy of the model weights (internal/nn's InferCtx path: per-worker
// scratch, no per-worker weight copies, the same blocked GEMM kernels
// and parallel pool as training).
//
// Following the repo's discipline that every executed system is held
// to a model of itself, the batcher exists in three forms that share
// one deterministic policy state machine:
//
//   - Server: the wall-clock goroutine server (Submit/Drain).
//   - RunVirtual: the same policy driven by a virtual clock — compute
//     is executed for real (responses are bitwise reproducible), but
//     time is taken from a batch-size-dependent latency model, so a
//     whole load-generation run is deterministic to the last float.
//   - Simulate: the serving simulator — the policy with no compute at
//     all, cross-replayed through the internal/sim discrete-event
//     engine. Virtual runs must match it exactly; wall-clock runs are
//     held to it within a tolerance band by the validation suite.
//
// Per-request latency is traced at four points (admission, batch
// close, compute launch, completion) as a trace.RequestTrace, which is
// what the p50/p99 reporting and the measured-vs-modeled comparisons
// consume.
package serve

import (
	"errors"
	"fmt"
)

// Kind selects a request's workload.
type Kind uint8

// The three served workloads over the frozen encoder.
const (
	// Embed returns the mean-pooled encoder features (the linear-probe
	// representation).
	Embed Kind = iota
	// Classify returns classification logits from the fitted probe
	// head over the pooled features.
	Classify
	// Segment returns one class label per patch token from the fitted
	// segmentation head over per-token features.
	Segment

	numKinds
)

// String names the kind for reports and traces.
func (k Kind) String() string {
	switch k {
	case Embed:
		return "embed"
	case Classify:
		return "classify"
	case Segment:
		return "segment"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Admission and execution errors.
var (
	// ErrShed is returned when the bounded admission queue is full: the
	// server refuses the request instead of letting latency grow
	// without bound.
	ErrShed = errors.New("serve: admission queue full, request shed")
	// ErrClosed is returned by Submit after Drain started.
	ErrClosed = errors.New("serve: server closed")
	// ErrNoHead rejects Classify/Segment requests when the model was
	// loaded without the corresponding fitted head.
	ErrNoHead = errors.New("serve: no fitted head for this request kind")
	// ErrBadRequest rejects malformed requests (unknown kind, wrong
	// image length).
	ErrBadRequest = errors.New("serve: malformed request")
)

// Config is the dynamic batcher's policy knobs.
type Config struct {
	// MaxBatch closes a batch as soon as this many requests wait.
	MaxBatch int
	// MaxWaitSec closes the waiting batch when its oldest request has
	// waited this long, whatever its size. Zero means every request
	// closes its own batch immediately (no batching delay).
	MaxWaitSec float64
	// QueueCap bounds requests admitted but not yet computing (waiting
	// + closed-but-undispatched). Admissions beyond it shed.
	QueueCap int
	// Workers is the number of concurrent inference engines sharing
	// the read-only weights.
	Workers int
}

// DefaultConfig returns a modest single-engine batcher.
func DefaultConfig() Config {
	return Config{MaxBatch: 8, MaxWaitSec: 2e-3, QueueCap: 64, Workers: 1}
}

// Validate reports unusable configurations.
func (c Config) Validate() error {
	if c.MaxBatch < 1 {
		return fmt.Errorf("serve: MaxBatch %d < 1", c.MaxBatch)
	}
	if c.MaxWaitSec < 0 {
		return fmt.Errorf("serve: negative MaxWaitSec %v", c.MaxWaitSec)
	}
	if c.QueueCap < c.MaxBatch {
		return fmt.Errorf("serve: QueueCap %d < MaxBatch %d", c.QueueCap, c.MaxBatch)
	}
	if c.Workers < 1 {
		return fmt.Errorf("serve: Workers %d < 1", c.Workers)
	}
	return nil
}
