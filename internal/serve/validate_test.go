package serve

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/trace"
)

// validateConfigs is the 2-config half of the validation matrix.
func validateConfigs() []Config {
	return []Config{
		{MaxBatch: 4, MaxWaitSec: 2e-3, QueueCap: 1000, Workers: 1},
		{MaxBatch: 8, MaxWaitSec: 5e-3, QueueCap: 1000, Workers: 1},
	}
}

// TestVirtualHeldToSimulatorMatrix is the hermetic half of the
// held-to-simulator contract: across 3 arrival rates × 2 batch
// configurations, the virtual executor's measured queue waits and
// batch occupancies equal the serving simulator's predictions exactly
// — zero tolerance, because on a virtual clock measurement and model
// are the same float operations.
func TestVirtualHeldToSimulatorMatrix(t *testing.T) {
	m := tinyModel(7)
	lat := DefaultLatency(m.MAE.Cfg.Encoder)
	for _, cfg := range validateConfigs() {
		for _, rate := range []float64{300, 900, 2700} {
			name := fmt.Sprintf("batch%d-rate%g", cfg.MaxBatch, rate)
			arrivals := PoissonArrivals(rate, 80, mixedKinds, imageFn(m, 31), 17)
			virt, err := RunVirtual(cfg, lat, m, arrivals)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Simulate(cfg, lat, arrivals)
			if err != nil {
				t.Fatal(err)
			}
			vr := Summarize(name, virt)
			sr := Summarize(name, rep.Run)
			if vr.QueueP50 != sr.QueueP50 || vr.QueueP99 != sr.QueueP99 {
				t.Errorf("%s: queue waits diverge: virtual p50/p99 %v/%v, sim %v/%v",
					name, vr.QueueP50, vr.QueueP99, sr.QueueP50, sr.QueueP99)
			}
			if vr.MeanBatch != sr.MeanBatch {
				t.Errorf("%s: occupancy diverges: virtual %v, sim %v", name, vr.MeanBatch, sr.MeanBatch)
			}
			if vr.TotalP99 != sr.TotalP99 || vr.Utilization != sr.Utilization {
				t.Errorf("%s: p99/utilization diverge: %v/%v vs %v/%v",
					name, vr.TotalP99, vr.Utilization, sr.TotalP99, sr.Utilization)
			}
		}
	}
}

// TestSimulatedP99MonotoneInRate checks the simulator's shape: in the
// saturated regime, driving the same inter-arrival draws faster can
// only push tail latency up.
func TestSimulatedP99MonotoneInRate(t *testing.T) {
	lat := simpleLat(1e-3, 2e-4)
	for _, cfg := range validateConfigs() {
		prev := -1.0
		for _, rate := range []float64{800, 1600, 3200} {
			// Same seed: arrival times scale exactly by the rate ratio.
			arrivals := PoissonArrivals(rate, 300, []Kind{Embed}, func(int) []float32 { return nil }, 5)
			rep, err := Simulate(cfg, lat, arrivals)
			if err != nil {
				t.Fatal(err)
			}
			r := Summarize("", rep.Run)
			if r.Shed != 0 {
				t.Fatalf("unexpected shed at rate %g", rate)
			}
			if r.TotalP99 < prev {
				t.Errorf("config %+v: p99 fell from %v to %v as rate rose to %g",
					cfg, prev, r.TotalP99, rate)
			}
			prev = r.TotalP99
		}
	}
}

// TestWallClockHeldToSimulator is the measured half: a real Server
// under timed load, held to the serving simulator within a tolerance
// band. It times actual compute on this host, so like the calibration
// suite it is not part of hermetic tier-1: set SERVE_VALIDATE=1 to run
// it (the CI calibration job does).
func TestWallClockHeldToSimulator(t *testing.T) {
	if os.Getenv("SERVE_VALIDATE") == "" {
		t.Skip("timing suite; set SERVE_VALIDATE=1 to run")
	}
	m := tinyModel(7)
	lat := measureLatency(m)
	t.Logf("measured curve: %s", lat)

	for _, cfg := range validateConfigs() {
		for _, mult := range []float64{0.4, 0.8, 1.6} {
			// Rates relative to this host's measured single-engine
			// capacity at full batches.
			kinds := make([]Kind, cfg.MaxBatch)
			for i := range kinds {
				kinds[i] = mixedKinds[i%len(mixedKinds)]
			}
			capacity := float64(cfg.MaxBatch) / lat.BatchSec(kinds)
			rate := mult * capacity
			name := fmt.Sprintf("batch%d-x%g", cfg.MaxBatch, mult)
			t.Run(name, func(t *testing.T) {
				const n = 100
				img := imageFn(m, 33)
				schedule := PoissonArrivals(rate, n, mixedKinds, img, 23)
				s, err := NewServer(cfg, m)
				if err != nil {
					t.Fatal(err)
				}
				start := time.Now()
				chans := make([]<-chan *Response, n)
				for i, a := range schedule {
					if d := a.AtSec - time.Since(start).Seconds(); d > 0 {
						time.Sleep(time.Duration(d * float64(time.Second)))
					}
					ch, err := s.Submit(a.Kind, a.Img)
					if err != nil {
						t.Fatal(err)
					}
					chans[i] = ch
				}
				resps := make([]*Response, n)
				for i, ch := range chans {
					resps[i] = <-ch
				}
				s.Drain()

				// Feed the *measured* admission instants to the simulator so
				// submission jitter is not charged to the model.
				simArr := make([]Arrival, n)
				for i, r := range resps {
					simArr[i] = Arrival{AtSec: r.Trace.ArrivalSec, Kind: r.Kind}
				}
				rep, err := Simulate(cfg, lat, simArr)
				if err != nil {
					t.Fatal(err)
				}

				meas := SummarizeResponses(name, resps, cfg.Workers)
				pred := Summarize(name, rep.Run)
				t.Logf("measured: %s", RenderTable([]Report{meas}))
				t.Logf("predicted: %s", RenderTable([]Report{pred}))

				queue := trace.Agreement{Label: name + "/queue-p50",
					MeasuredSec: meas.QueueP50, PredictedSec: pred.QueueP50, FloorSec: 2e-3}
				if !queue.Within(3) {
					t.Errorf("queue wait off the simulator: %s", queue)
				}
				occ := trace.Agreement{Label: name + "/occupancy",
					MeasuredSec: meas.MeanBatch, PredictedSec: pred.MeanBatch}
				if !occ.Within(1.75) {
					t.Errorf("batch occupancy off the simulator: %s", occ)
				}
			})
		}
	}
}

// measureLatency fits the serving latency curve to this host: best-of
// timings of a singleton and a full batch give the launch and per-item
// terms (the simulator's α and β).
func measureLatency(m *Model) LatencyModel {
	img := imageFn(m, 34)
	timeBatch := func(size int) float64 {
		reqs := make([]*Request, size)
		resps := make([]*Response, size)
		for i := 0; i < size; i++ {
			reqs[i] = &Request{ID: uint64(i), Kind: mixedKinds[i%len(mixedKinds)], Img: img(i)}
			resps[i] = &Response{ID: uint64(i), Kind: reqs[i].Kind}
		}
		exec := newModelExec(m)
		members := make([]*pending, size)
		for i := range members {
			members[i] = &pending{req: reqs[i], resp: resps[i]}
		}
		best := 0.0
		for rep := 0; rep < 5; rep++ {
			t0 := time.Now()
			exec(members)
			if d := time.Since(t0).Seconds(); rep == 0 || d < best {
				best = d
			}
		}
		return best
	}
	t1 := timeBatch(1)
	t8 := timeBatch(8)
	per := (t8 - t1) / 7
	if per <= 0 {
		per = t1
	}
	launch := t1 - per
	if launch < 0 {
		launch = 0
	}
	var lat LatencyModel
	lat.LaunchSec = launch
	for k := Kind(0); k < numKinds; k++ {
		lat.PerItemSec[k] = per
	}
	return lat
}
