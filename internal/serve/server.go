package serve

import (
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/trace"
)

// waiter is one wall-clock request parked in the server: its payload,
// its response under construction, and the 1-buffered channel the
// worker delivers on.
type waiter struct {
	req  *Request
	resp *Response
	done chan *Response
}

// wallBatch is one closed batch in flight to a worker. rec points into
// the server's batch log (stable — the log stores pointers), and the
// owning worker alone writes its Engine/Start/Done fields.
type wallBatch struct {
	rec     *BatchRec
	members []*waiter
}

// Server is the wall-clock form of the batcher: Submit admits requests
// from any goroutine, a deadline timer and the size trigger close
// batches under the same policy as the virtual driver, and a fixed
// pool of worker goroutines executes closed batches FIFO on the shared
// read-only weights (one nn.InferCtx per worker). Timestamps come from
// the host clock, so traces here are measurements — the validation
// suite holds them to the simulator's predictions.
type Server struct {
	cfg   Config
	model *Model
	start time.Time

	mu          sync.Mutex
	waiting     []*waiter
	outstanding int
	nextID      uint64
	closed      bool
	timerGen    int
	batches     []*BatchRec
	shed        int
	served      int

	batchCh chan *wallBatch
	wg      sync.WaitGroup
}

// Stats summarizes a drained server: request counts and the completed
// batch log in close order.
type Stats struct {
	Served  int
	Shed    int
	Batches []BatchRec
}

// NewServer validates the configuration and starts cfg.Workers engine
// goroutines over the shared model.
func NewServer(cfg Config, model *Model) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		model: model,
		start: time.Now(),
		// Every queued batch holds ≥1 outstanding request and admission
		// sheds past QueueCap, so QueueCap slots guarantee the in-lock
		// channel send in closeLocked never blocks against a worker
		// waiting for the lock.
		batchCh: make(chan *wallBatch, cfg.QueueCap),
	}
	for e := 0; e < cfg.Workers; e++ {
		s.wg.Add(1)
		go s.worker(e)
	}
	return s, nil
}

// now returns seconds since the server started — the wall-clock
// counterpart of the virtual driver's event time.
func (s *Server) now() float64 { return time.Since(s.start).Seconds() }

// Submit admits one request and returns a 1-buffered channel that will
// carry the response. Rejected and shed requests complete immediately
// (the response carries the error); the channel always delivers exactly
// one response.
func (s *Server) Submit(kind Kind, img []float32) (<-chan *Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	now := s.now()
	id := s.nextID
	s.nextID++
	resp := &Response{ID: id, Kind: kind}
	resp.Trace = trace.RequestTrace{ID: id, ArrivalSec: now}
	done := make(chan *Response, 1)

	finish := func(err error) {
		resp.Err = err
		resp.Trace.BatchFormSec = now
		resp.Trace.ComputeStartSec = now
		resp.Trace.DoneSec = now
		done <- resp
	}
	if err := s.model.admissible(kind, img); err != nil {
		finish(err)
		return done, nil
	}
	if s.outstanding >= s.cfg.QueueCap {
		s.shed++
		finish(ErrShed)
		return done, nil
	}
	s.outstanding++
	s.waiting = append(s.waiting, &waiter{
		req:  &Request{ID: id, Kind: kind, Img: img},
		resp: resp,
		done: done,
	})
	if len(s.waiting) >= s.cfg.MaxBatch {
		s.closeLocked(s.cfg.MaxBatch, "size", now)
	} else if len(s.waiting) == 1 {
		s.armTimerLocked(now)
	}
	return done, nil
}

// armTimerLocked schedules the deadline close for the current oldest
// waiting request. The generation counter invalidates stale timers
// (ones armed before a size close emptied the queue).
func (s *Server) armTimerLocked(now float64) {
	if len(s.waiting) == 0 || s.cfg.MaxWaitSec <= 0 {
		if len(s.waiting) > 0 {
			// Zero-wait config: close immediately.
			s.closeLocked(len(s.waiting), "deadline", now)
		}
		return
	}
	s.timerGen++
	gen := s.timerGen
	delay := s.waiting[0].resp.Trace.ArrivalSec + s.cfg.MaxWaitSec - now
	if delay < 0 {
		delay = 0
	}
	time.AfterFunc(time.Duration(delay*float64(time.Second)), func() {
		s.deadlineFire(gen)
	})
}

// deadlineFire closes all waiting requests if the arming generation is
// still current.
func (s *Server) deadlineFire(gen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || gen != s.timerGen || len(s.waiting) == 0 {
		return
	}
	s.closeLocked(len(s.waiting), "deadline", s.now())
}

// closeLocked forms a batch from the k oldest waiting requests and
// hands it to the worker pool. Caller holds s.mu.
func (s *Server) closeLocked(k int, reason string, now float64) {
	members := append([]*waiter(nil), s.waiting[:k]...)
	copy(s.waiting, s.waiting[k:])
	s.waiting = s.waiting[:len(s.waiting)-k]

	ids := make([]uint64, k)
	kinds := make([]Kind, k)
	for i, m := range members {
		ids[i] = m.req.ID
		kinds[i] = m.req.Kind
		m.resp.Trace.BatchFormSec = now
	}
	rec := &BatchRec{
		Seq: len(s.batches), Engine: -1,
		IDs: ids, Kinds: kinds, Reason: reason,
		CloseSec: now,
	}
	s.batches = append(s.batches, rec)
	s.batchCh <- &wallBatch{rec: rec, members: members}
	// A size close can leave newer requests waiting; their deadline is
	// the new oldest's.
	s.timerGen++
	if len(s.waiting) > 0 {
		s.armTimerLocked(now)
	}
}

// worker is one inference engine: it executes closed batches FIFO from
// the shared channel with its own scratch arena over the shared
// read-only weights.
func (s *Server) worker(engine int) {
	defer s.wg.Done()
	ctx := nn.NewInferCtx()
	// A worker that served one oversized batch would otherwise pin that
	// batch's scratch footprint until process exit (the PR 9
	// scratch-growth lesson).
	defer ctx.Release()
	for b := range s.batchCh {
		startSec := s.now()
		n := len(b.members)
		s.mu.Lock()
		s.outstanding -= n
		s.served += n
		s.mu.Unlock()

		reqs := make([]*Request, n)
		resps := make([]*Response, n)
		for i, m := range b.members {
			reqs[i] = m.req
			resps[i] = m.resp
			m.resp.Trace.ComputeStartSec = startSec
			m.resp.BatchSeq = b.rec.Seq
			m.resp.BatchSize = n
		}
		s.model.Fill(ctx, reqs, resps)
		doneSec := s.now()
		b.rec.Engine = engine
		b.rec.StartSec = startSec
		b.rec.DoneSec = doneSec
		for _, m := range b.members {
			m.resp.Trace.DoneSec = doneSec
			m.done <- m.resp
		}
	}
}

// Drain closes admission, flushes any still-waiting requests as a
// final batch, waits for every worker to finish, and returns the run's
// statistics. After Drain, Submit returns ErrClosed.
func (s *Server) Drain() Stats {
	s.mu.Lock()
	s.closed = true
	s.timerGen++ // cancel any armed deadline
	if len(s.waiting) > 0 {
		s.closeLocked(len(s.waiting), "drain", s.now())
	}
	s.mu.Unlock()
	close(s.batchCh)
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Served: s.served, Shed: s.shed}
	st.Batches = make([]BatchRec, len(s.batches))
	for i, r := range s.batches {
		st.Batches[i] = *r
	}
	return st
}
