package serve

import (
	"fmt"

	"repro/internal/mae"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/train"
)

// Model is the served artifact: the MAE encoder weights (read-only
// after construction) plus optional fitted probe heads. One Model is
// shared by every inference engine — the Infer forward path never
// writes layer state, so workers bring a per-engine nn.InferCtx and
// nothing else.
type Model struct {
	MAE *mae.Model
	// Cls scores Classify requests over pooled features; nil rejects
	// them with ErrNoHead.
	Cls *probe.Head
	// Seg scores Segment requests over per-token features; nil rejects
	// them with ErrNoHead.
	Seg *probe.Head
	// BF16 marks the reduced-precision serving mode: weights were
	// rounded to bf16 once at load (RoundBF16), request images are
	// rounded at ingest, and the encoder-side projections carry packed
	// 2-byte weight shadows that the inference GEMM widens in its pack
	// stage (tensor.MatMulBF16) — no fp32 copy of those weights is
	// materialized on the serving path. Accumulation stays fp32, and
	// because the weights are pre-rounded the bf16-input GEMM is
	// bitwise identical to the fp32 GEMM over the rounded values.
	BF16 bool
}

// NewModel builds a servable model with fresh seed-derived weights —
// the demo path; production serving loads a checkpoint via
// NewModelFromState.
func NewModel(cfg mae.Config, seed uint64) *Model {
	return &Model{MAE: mae.New(cfg, rng.New(seed))}
}

// NewModelFromState builds the model for cfg and loads the fp32
// master weights from a training checkpoint. The TrainState does not
// record the architecture, so cfg must be the training configuration;
// a mismatch is caught by the flat-dimension check.
func NewModelFromState(cfg mae.Config, st *train.TrainState) (*Model, error) {
	m := &Model{MAE: mae.New(cfg, rng.New(1))}
	params := m.MAE.Params()
	if want := opt.FlatDim(params); want != len(st.Master) {
		return nil, fmt.Errorf("serve: checkpoint has %d weights, config wants %d (wrong architecture?)",
			len(st.Master), want)
	}
	opt.UnpackValues(params, st.Master)
	return m, nil
}

// AttachHeads installs fitted probe heads (either may be nil).
func (m *Model) AttachHeads(cls, seg *probe.Head) {
	m.Cls = cls
	m.Seg = seg
}

// RoundBF16 rounds every encoder-side weight and head weight to
// bfloat16 (round-to-nearest-even) in place, packs the encoder
// projections' bf16 weight shadows for the bf16-input GEMM, and flags
// the model, so the serving path answers from bf16-resolution
// parameters without widening them back to fp32. Call once at load
// time, before the first request.
func (m *Model) RoundBF16() {
	for _, p := range m.MAE.Params() {
		tensor.RoundBF16(p.Value.Data, p.Value.Data)
	}
	for _, h := range []*probe.Head{m.Cls, m.Seg} {
		if h != nil {
			tensor.RoundBF16(h.W, h.W)
			tensor.RoundBF16(h.B, h.B)
		}
	}
	m.MAE.PackBF16()
	m.BF16 = true
}

// ImageLen returns the expected request payload length (channel-last
// H·W·C pixels at the encoder's geometry).
func (m *Model) ImageLen() int {
	enc := m.MAE.Cfg.Encoder
	return enc.ImageSize * enc.ImageSize * enc.Channels
}

// admissible validates a request against the loaded model at admission
// time, so malformed requests never occupy batch slots.
func (m *Model) admissible(kind Kind, img []float32) error {
	if kind >= numKinds {
		return ErrBadRequest
	}
	if len(img) != m.ImageLen() {
		return ErrBadRequest
	}
	if (kind == Classify && m.Cls == nil) || (kind == Segment && m.Seg == nil) {
		return ErrNoHead
	}
	return nil
}

// Request is one admitted inference request.
type Request struct {
	ID   uint64
	Kind Kind
	// Img is the channel-last image payload (ImageLen floats).
	Img []float32
	// Client tags closed-loop load-generator requests (reporting only).
	Client int
}

// Response carries one request's result and its latency trace. Exactly
// one of Embedding/Logits/Labels is set according to Kind, unless Err
// is set (shed or rejected requests complete with only Err and the
// admission trace point).
type Response struct {
	ID   uint64
	Kind Kind
	// Client echoes the request's client tag (closed-loop generators
	// route follow-up arrivals by it).
	Client int
	Err    error

	Embedding []float32 // Embed: (width) pooled features
	Logits    []float32 // Classify: (classes) head logits
	Labels    []uint8   // Segment: one class per patch token

	// Trace holds the four stamped latency points.
	Trace trace.RequestTrace
	// BatchSeq/BatchSize identify the batch the request rode in
	// (dispatch order), for occupancy accounting.
	BatchSeq  int
	BatchSize int
}

// Fill executes one formed batch on the shared weights: a single
// full-token encoder pass over every member image, then per-request
// head work — pooling for Embed, pooling + classification head for
// Classify, per-token head + argmax for Segment. Mixed-kind batches
// share the encoder pass. resps[i] receives reqs[i]'s payload; the
// written payload slices are freshly allocated (they outlive ctx).
//
// All per-request arithmetic matches the training-path extractors
// bitwise for a batch of the same composition: the encoder pass is
// vit/mae's Infer (bitwise ≡ Forward), pooling is mae.PoolTokens
// (≡ Features), and head scoring is probe.Head.LogitsInto (≡ the
// probe's evaluate-time logits).
func (m *Model) Fill(ctx *nn.InferCtx, reqs []*Request, resps []*Response) {
	n := len(reqs)
	if n == 0 {
		return
	}
	ctx.Reset()
	enc := m.MAE.Cfg.Encoder
	imgLen := m.ImageLen()
	t := enc.Tokens()
	w := enc.Width

	imgs := ctx.Take(n * imgLen)
	for i, r := range reqs {
		copy(imgs[i*imgLen:(i+1)*imgLen], r.Img)
	}
	if m.BF16 {
		tensor.RoundBF16(imgs, imgs)
	}

	tok := m.MAE.InferTokenFeatures(ctx, imgs, n)
	pooled := ctx.Take(n * w)
	for i := range pooled {
		pooled[i] = 0
	}
	m.MAE.PoolTokens(pooled, tok, n)

	for i, r := range reqs {
		resp := resps[i]
		switch r.Kind {
		case Embed:
			resp.Embedding = append([]float32(nil), pooled[i*w:(i+1)*w]...)
		case Classify:
			h := m.Cls
			logits := make([]float32, h.Classes)
			scratch := ctx.Take(w)
			h.LogitsInto(logits, pooled[i*w:(i+1)*w], scratch, 1)
			resp.Logits = logits
		case Segment:
			h := m.Seg
			logits := ctx.Take(t * h.Classes)
			scratch := ctx.Take(t * w)
			h.LogitsInto(logits, tok[i*t*w:(i+1)*t*w], scratch, t)
			labels := make([]uint8, t)
			for j := range labels {
				labels[j] = uint8(probe.Argmax(logits[j*h.Classes : (j+1)*h.Classes]))
			}
			resp.Labels = labels
		}
	}
}
