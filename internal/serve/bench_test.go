package serve

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkServe measures the executed wall-clock server under timed
// open-loop load: for each (arrival-rate multiple, batcher config)
// cell it replays a Poisson schedule against the real goroutine server
// and reports measured p50/p99 latency, throughput, and batch
// occupancy. Recorded into BENCH_serve.json by `make bench-serve` for
// the cross-PR perf trajectory.
func BenchmarkServe(b *testing.B) {
	m := tinyModel(7)
	lat := measureLatency(m)
	for _, cfg := range []Config{
		{MaxBatch: 4, MaxWaitSec: 2e-3, QueueCap: 256, Workers: 1},
		{MaxBatch: 8, MaxWaitSec: 5e-3, QueueCap: 256, Workers: 2},
	} {
		for _, mult := range []float64{0.5, 1.5} {
			kinds := make([]Kind, cfg.MaxBatch)
			for i := range kinds {
				kinds[i] = mixedKinds[i%len(mixedKinds)]
			}
			rate := mult * float64(cfg.Workers) * float64(cfg.MaxBatch) / lat.BatchSec(kinds)
			name := fmt.Sprintf("batch=%d/workers=%d/load=%gx", cfg.MaxBatch, cfg.Workers, mult)
			b.Run(name, func(b *testing.B) {
				const n = 200
				img := imageFn(m, 35)
				var last Report
				for iter := 0; iter < b.N; iter++ {
					schedule := PoissonArrivals(rate, n, mixedKinds, img, 29)
					s, err := NewServer(cfg, m)
					if err != nil {
						b.Fatal(err)
					}
					start := time.Now()
					chans := make([]<-chan *Response, n)
					for i, a := range schedule {
						if d := a.AtSec - time.Since(start).Seconds(); d > 0 {
							time.Sleep(time.Duration(d * float64(time.Second)))
						}
						ch, err := s.Submit(a.Kind, a.Img)
						if err != nil {
							b.Fatal(err)
						}
						chans[i] = ch
					}
					resps := make([]*Response, n)
					for i, ch := range chans {
						resps[i] = <-ch
					}
					s.Drain()
					last = SummarizeResponses(name, resps, cfg.Workers)
				}
				b.ReportMetric(last.ThroughputRPS, "req/s")
				b.ReportMetric(1e3*last.TotalP50, "p50-ms")
				b.ReportMetric(1e3*last.TotalP99, "p99-ms")
				b.ReportMetric(last.MeanBatch, "batch-occ")
				b.ReportMetric(float64(last.Shed), "shed")
				b.ReportMetric(last.Utilization, "util")
			})
		}
	}
}

// BenchmarkServeVirtual records the deterministic counterpart: the
// same load shapes through the virtual executor, where every metric is
// exactly reproducible run to run (the perf-trajectory baseline that
// cannot drift with host noise).
func BenchmarkServeVirtual(b *testing.B) {
	m := tinyModel(7)
	lat := DefaultLatency(m.MAE.Cfg.Encoder)
	cfg := Config{MaxBatch: 8, MaxWaitSec: 2e-3, QueueCap: 256, Workers: 1}
	b.Run("batch=8/rate=2000", func(b *testing.B) {
		var rep Report
		for iter := 0; iter < b.N; iter++ {
			arrivals := PoissonArrivals(2000, 200, mixedKinds, imageFn(m, 36), 31)
			res, err := RunVirtual(cfg, lat, m, arrivals)
			if err != nil {
				b.Fatal(err)
			}
			rep = Summarize("virtual", res)
		}
		b.ReportMetric(rep.ThroughputRPS, "req/s")
		b.ReportMetric(1e3*rep.TotalP50, "p50-ms")
		b.ReportMetric(1e3*rep.TotalP99, "p99-ms")
		b.ReportMetric(rep.MeanBatch, "batch-occ")
	})
}
