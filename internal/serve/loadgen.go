package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/nn"
	"repro/internal/rng"
)

// PoissonArrivals builds a deterministic open-loop request schedule:
// n requests with exponential inter-arrival gaps at the given mean
// rate (requests/s), kinds assigned cyclically from mix, and images
// rendered by index. The same seed always yields the same schedule to
// the last bit, which is what makes whole serving runs replayable.
func PoissonArrivals(rate float64, n int, mix []Kind, image func(i int) []float32, seed uint64) []Arrival {
	if rate <= 0 || n <= 0 || len(mix) == 0 {
		return nil
	}
	r := rng.New(seed)
	arrivals := make([]Arrival, n)
	t := 0.0
	for i := 0; i < n; i++ {
		// Exponential gap via inversion; 1-U keeps the argument in (0,1].
		t += -math.Log(1-r.Float64()) / rate
		arrivals[i] = Arrival{
			AtSec: t,
			Kind:  mix[i%len(mix)],
			Img:   image(i),
		}
	}
	return arrivals
}

// UniformArrivals builds an evenly spaced open-loop schedule (one
// request every 1/rate seconds, first at 1/rate) — the degenerate
// arrival process used by golden tests that want batch compositions
// readable by hand.
func UniformArrivals(rate float64, n int, mix []Kind, image func(i int) []float32) []Arrival {
	if rate <= 0 || n <= 0 || len(mix) == 0 {
		return nil
	}
	gap := 1 / rate
	arrivals := make([]Arrival, n)
	for i := 0; i < n; i++ {
		arrivals[i] = Arrival{
			AtSec: float64(i+1) * gap,
			Kind:  mix[i%len(mix)],
			Img:   image(i),
		}
	}
	return arrivals
}

// ClosedLoop describes a closed-loop load test: Clients concurrent
// clients, each holding one request in flight, issuing its next
// request ThinkSec after the previous response lands, PerClient times.
type ClosedLoop struct {
	Clients   int
	PerClient int
	ThinkSec  float64
	Mix       []Kind
	// Image renders the payload for global request index
	// client*PerClient + sequence.
	Image func(i int) []float32
}

// RunClosedLoop drives a closed-loop load test through the virtual
// executor: every client's first request arrives at time zero (admitted
// in client order), and each completion schedules that client's next
// arrival — the policy loop's onDone hook, so the whole run stays one
// deterministic event sequence.
func RunClosedLoop(cfg Config, lat LatencyModel, model *Model, cl ClosedLoop) (*RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if cl.Clients <= 0 || cl.PerClient <= 0 || len(cl.Mix) == 0 {
		return nil, fmt.Errorf("serve: closed loop needs clients, requests and a kind mix")
	}
	arrival := func(c, seq int, at float64) Arrival {
		i := c*cl.PerClient + seq
		return Arrival{AtSec: at, Kind: cl.Mix[i%len(cl.Mix)], Img: cl.Image(i), Client: c}
	}
	initial := make([]Arrival, cl.Clients)
	for c := 0; c < cl.Clients; c++ {
		initial[c] = arrival(c, 0, 0)
	}
	issued := make([]int, cl.Clients)
	for c := range issued {
		issued[c] = 1
	}
	onDone := func(resp *Response, doneSec float64, push func(Arrival)) {
		c := resp.Client
		if issued[c] >= cl.PerClient {
			return
		}
		push(arrival(c, issued[c], doneSec+cl.ThinkSec))
		issued[c]++
	}

	return runPolicy(cfg, lat, model.admissible, newModelExec(model), onDone, initial), nil
}

// newModelExec returns a policy exec hook that runs real batch compute
// on the shared weights with one scratch arena (the virtual driver
// executes batches serially).
func newModelExec(model *Model) func([]*pending) {
	ctx := nn.NewInferCtx()
	return func(members []*pending) {
		reqs := make([]*Request, len(members))
		resps := make([]*Response, len(members))
		for i, m := range members {
			reqs[i] = m.req
			resps[i] = m.resp
		}
		model.Fill(ctx, reqs, resps)
	}
}

// Report summarizes one serving run for the p50/p99 tables and
// BENCH_serve.json.
type Report struct {
	Label string
	// Total admissions, how many were served, shed on a full queue, or
	// rejected at validation.
	Total, Served, Shed, Rejected int
	MakespanSec                   float64
	// ThroughputRPS is served requests over makespan.
	ThroughputRPS float64
	// MeanBatch is the mean occupancy of executed batches.
	MeanBatch float64
	// BatchHist counts executed batches by size (index = size).
	BatchHist []int
	// Queue percentiles are over admission→compute-start waits of
	// served requests; Total percentiles over admission→completion.
	QueueP50, QueueP99 float64
	TotalP50, TotalP99 float64
	// Utilization is engine busy time over Workers × makespan.
	Utilization float64
}

// Percentile returns the nearest-rank q-quantile (q in (0,1]) of xs.
// xs is copied and sorted; an empty slice yields 0.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Summarize reduces a run to its report.
func Summarize(label string, res *RunResult) Report {
	r := Report{Label: label, Total: len(res.Responses), MakespanSec: res.MakespanSec}
	var queue, total []float64
	for _, resp := range res.Responses {
		switch resp.Err {
		case nil:
			r.Served++
			queue = append(queue, resp.Trace.QueueWaitSec())
			total = append(total, resp.Trace.TotalSec())
		case ErrShed:
			r.Shed++
		default:
			r.Rejected++
		}
	}
	busy := 0.0
	sumOcc := 0
	for _, b := range res.Batches {
		busy += b.DoneSec - b.StartSec
		n := len(b.IDs)
		sumOcc += n
		for len(r.BatchHist) <= n {
			r.BatchHist = append(r.BatchHist, 0)
		}
		r.BatchHist[n]++
	}
	if len(res.Batches) > 0 {
		r.MeanBatch = float64(sumOcc) / float64(len(res.Batches))
	}
	if res.MakespanSec > 0 {
		r.ThroughputRPS = float64(r.Served) / res.MakespanSec
		r.Utilization = busy / (float64(res.Cfg.Workers) * res.MakespanSec)
	}
	r.QueueP50 = Percentile(queue, 0.50)
	r.QueueP99 = Percentile(queue, 0.99)
	r.TotalP50 = Percentile(total, 0.50)
	r.TotalP99 = Percentile(total, 0.99)
	return r
}

// SummarizeResponses builds a Report from wall-clock responses, where
// no RunResult exists: batches are recovered from the per-response
// BatchSeq/BatchSize tags and engine busy time from the compute spans
// (each batch counted once).
func SummarizeResponses(label string, resps []*Response, workers int) Report {
	r := Report{Label: label, Total: len(resps)}
	var queue, total []float64
	seen := map[int]int{}
	batchDur := map[int]float64{}
	makespan := 0.0
	for _, resp := range resps {
		if resp.Err != nil {
			if resp.Err == ErrShed {
				r.Shed++
			} else {
				r.Rejected++
			}
			continue
		}
		r.Served++
		queue = append(queue, resp.Trace.QueueWaitSec())
		total = append(total, resp.Trace.TotalSec())
		seen[resp.BatchSeq] = resp.BatchSize
		batchDur[resp.BatchSeq] = resp.Trace.ComputeSec()
		if resp.Trace.DoneSec > makespan {
			makespan = resp.Trace.DoneSec
		}
	}
	sum := 0
	for sz := range seen {
		sum += seen[sz]
	}
	if len(seen) > 0 {
		r.MeanBatch = float64(sum) / float64(len(seen))
	}
	for _, sz := range seen {
		for len(r.BatchHist) <= sz {
			r.BatchHist = append(r.BatchHist, 0)
		}
		r.BatchHist[sz]++
	}
	r.MakespanSec = makespan
	if makespan > 0 && workers > 0 {
		r.ThroughputRPS = float64(r.Served) / makespan
		busy := 0.0
		for _, d := range batchDur {
			busy += d
		}
		r.Utilization = busy / (float64(workers) * makespan)
	}
	r.QueueP50 = Percentile(queue, 0.50)
	r.QueueP99 = Percentile(queue, 0.99)
	r.TotalP50 = Percentile(total, 0.50)
	r.TotalP99 = Percentile(total, 0.99)
	return r
}

// RenderTable formats reports as the fixed-width table cmd/serve
// prints (latencies in ms, one row per report).
func RenderTable(reports []Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s %6s %5s %6s %7s %9s %9s %9s %9s %5s\n",
		"run", "total", "served", "shed", "batch", "rps", "q_p50ms", "q_p99ms", "t_p50ms", "t_p99ms", "util")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-22s %6d %6d %5d %6.2f %7.1f %9.3f %9.3f %9.3f %9.3f %5.2f\n",
			r.Label, r.Total, r.Served, r.Shed, r.MeanBatch, r.ThroughputRPS,
			1e3*r.QueueP50, 1e3*r.QueueP99, 1e3*r.TotalP50, 1e3*r.TotalP99, r.Utilization)
	}
	return b.String()
}
