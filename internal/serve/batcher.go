package serve

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Arrival is one scheduled request: an arrival time on the driver's
// clock plus the payload. Open-loop load generation pre-builds the
// whole schedule; closed-loop generation pushes each client's next
// arrival when its previous response completes.
type Arrival struct {
	AtSec  float64
	Kind   Kind
	Img    []float32
	Client int
}

// BatchRec records one closed batch: its members (request IDs in
// admission order), why it closed ("size" when MaxBatch filled,
// "deadline" when the oldest member aged past MaxWait), and its close
// / compute-start / done times. The serving simulator reproduces this
// record exactly; the wall-clock server produces the measured
// counterpart.
type BatchRec struct {
	Seq    int
	Engine int
	IDs    []uint64
	Kinds  []Kind
	Reason string
	// CloseSec is the batch-form event; StartSec/DoneSec bracket the
	// engine execution. StartSec − CloseSec is the dispatch wait.
	CloseSec, StartSec, DoneSec float64
}

// RunResult is one complete serving run: per-request responses
// (indexed by request ID, which is admission order), the batch log,
// and the makespan.
type RunResult struct {
	Cfg       Config
	Lat       LatencyModel
	Responses []*Response
	Batches   []BatchRec
	// MakespanSec is the completion time of the last response.
	MakespanSec float64
	// Shed counts admissions refused on a full queue.
	Shed int
}

// pending is one admitted request waiting for or riding in a batch.
type pending struct {
	req  *Request
	resp *Response
}

// arrivalEntry orders the future-arrival heap by (time, push order) so
// simultaneous arrivals admit in a deterministic order.
type arrivalEntry struct {
	at  float64
	seq int
	a   Arrival
}

// policyRun is one execution of the deterministic batcher state
// machine: a discrete-event loop whose only event types are "an
// arrival admits", "the oldest waiting request hits the deadline"
// (closing the batch), and "an engine frees" (launching the FIFO-next
// closed batch). Ties at equal timestamps resolve in that priority
// order reversed — engine launch first, then deadline close, then
// arrival — so an arrival landing exactly on a deadline instant
// misses the closing batch. The same machine drives the virtual
// executor (exec ≠ nil: batches run real compute, time comes from the
// latency model) and the serving simulator (exec = nil).
type policyRun struct {
	cfg Config
	lat LatencyModel

	// admit validates a request at admission (nil accepts everything).
	admit func(kind Kind, img []float32) error
	// exec runs a launched batch's compute (nil for simulation).
	exec func(members []*pending)
	// onDone fires per completed response, and may push follow-up
	// arrivals — the closed-loop hook.
	onDone func(resp *Response, doneSec float64, push func(Arrival))

	heap    []arrivalEntry
	heapSeq int

	now         float64
	waiting     []*pending
	dispatch    []*batchJob
	engineFree  []float64
	outstanding int

	responses []*Response
	batches   []BatchRec
	makespan  float64
	shed      int
}

type batchJob struct {
	rec     int
	members []*pending
	dur     float64
}

// push schedules a future arrival (heap ordered by time, then push
// order).
func (p *policyRun) push(a Arrival) {
	e := arrivalEntry{at: a.AtSec, seq: p.heapSeq, a: a}
	p.heapSeq++
	p.heap = append(p.heap, e)
	i := len(p.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(p.heap[i], p.heap[parent]) {
			break
		}
		p.heap[i], p.heap[parent] = p.heap[parent], p.heap[i]
		i = parent
	}
}

func heapLess(a, b arrivalEntry) bool {
	//statgate:allow floateq — deterministic heap order over stored virtual timestamps; ties must compare exactly
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (p *policyRun) popArrival() Arrival {
	top := p.heap[0]
	last := len(p.heap) - 1
	p.heap[0] = p.heap[last]
	p.heap = p.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(p.heap) && heapLess(p.heap[l], p.heap[small]) {
			small = l
		}
		if r < len(p.heap) && heapLess(p.heap[r], p.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		p.heap[i], p.heap[small] = p.heap[small], p.heap[i]
		i = small
	}
	return top.a
}

// runPolicy drives the state machine to completion and packages the
// result. arrivals seed the event heap; cfg must be valid.
func runPolicy(cfg Config, lat LatencyModel,
	admit func(Kind, []float32) error,
	exec func([]*pending),
	onDone func(*Response, float64, func(Arrival)),
	arrivals []Arrival) *RunResult {

	p := &policyRun{
		cfg: cfg, lat: lat,
		admit: admit, exec: exec, onDone: onDone,
		engineFree: make([]float64, cfg.Workers),
	}
	for _, a := range arrivals {
		p.push(a)
	}
	p.run()
	return &RunResult{
		Cfg: cfg, Lat: lat,
		Responses:   p.responses,
		Batches:     p.batches,
		MakespanSec: p.makespan,
		Shed:        p.shed,
	}
}

func (p *policyRun) run() {
	inf := math.Inf(1)
	for {
		p.startReady()

		tArr := inf
		if len(p.heap) > 0 {
			tArr = p.heap[0].at
		}
		tDl := inf
		if len(p.waiting) > 0 {
			tDl = p.waiting[0].resp.Trace.ArrivalSec + p.cfg.MaxWaitSec
		}
		tEng := inf
		if len(p.dispatch) > 0 {
			for _, f := range p.engineFree {
				if f < tEng {
					tEng = f
				}
			}
		}
		if math.IsInf(tArr, 1) && math.IsInf(tDl, 1) && math.IsInf(tEng, 1) {
			break
		}
		switch {
		case tEng <= tDl && tEng <= tArr:
			p.now = tEng // loop top launches the freed engine's batch
		case tDl <= tArr:
			p.now = tDl
			p.closeBatch(len(p.waiting), "deadline")
		default:
			p.now = tArr
			p.admitNext()
		}
	}
	if len(p.waiting) > 0 || len(p.dispatch) > 0 || p.outstanding != 0 {
		panic(fmt.Sprintf("serve: policy loop ended with %d waiting, %d dispatched, %d outstanding",
			len(p.waiting), len(p.dispatch), p.outstanding))
	}
}

// admitNext pops the earliest future arrival and admits, rejects, or
// sheds it.
func (p *policyRun) admitNext() {
	a := p.popArrival()
	id := uint64(len(p.responses))
	resp := &Response{ID: id, Kind: a.Kind, Client: a.Client}
	resp.Trace = trace.RequestTrace{ID: id, ArrivalSec: a.AtSec}
	p.responses = append(p.responses, resp)

	if p.admit != nil {
		if err := p.admit(a.Kind, a.Img); err != nil {
			p.complete(resp, err, a.AtSec)
			return
		}
	}
	if p.outstanding >= p.cfg.QueueCap {
		p.shed++
		p.complete(resp, ErrShed, a.AtSec)
		return
	}
	p.outstanding++
	p.waiting = append(p.waiting, &pending{
		req:  &Request{ID: id, Kind: a.Kind, Img: a.Img, Client: a.Client},
		resp: resp,
	})
	if len(p.waiting) >= p.cfg.MaxBatch {
		p.closeBatch(p.cfg.MaxBatch, "size")
	}
}

// complete finishes a request that never rides a batch (shed or
// rejected): every trace point collapses onto the arrival instant.
func (p *policyRun) complete(resp *Response, err error, at float64) {
	resp.Err = err
	resp.Trace.BatchFormSec = at
	resp.Trace.ComputeStartSec = at
	resp.Trace.DoneSec = at
	if at > p.makespan {
		p.makespan = at
	}
	if p.onDone != nil {
		p.onDone(resp, at, p.push)
	}
}

// closeBatch forms a batch from the k oldest waiting requests and
// queues it for dispatch.
func (p *policyRun) closeBatch(k int, reason string) {
	members := append([]*pending(nil), p.waiting[:k]...)
	copy(p.waiting, p.waiting[k:])
	p.waiting = p.waiting[:len(p.waiting)-k]

	ids := make([]uint64, k)
	kinds := make([]Kind, k)
	for i, m := range members {
		ids[i] = m.req.ID
		kinds[i] = m.req.Kind
		m.resp.Trace.BatchFormSec = p.now
	}
	rec := BatchRec{
		Seq: len(p.batches), Engine: -1,
		IDs: ids, Kinds: kinds, Reason: reason,
		CloseSec: p.now,
	}
	p.batches = append(p.batches, rec)
	p.dispatch = append(p.dispatch, &batchJob{
		rec: rec.Seq, members: members, dur: p.lat.BatchSec(kinds),
	})
}

// startReady launches closed batches FIFO onto engines that are free
// at the current instant (earliest-free engine, ties to the lowest
// index).
func (p *policyRun) startReady() {
	for len(p.dispatch) > 0 {
		e := -1
		best := math.Inf(1)
		for i, f := range p.engineFree {
			if f < best {
				best = f
				e = i
			}
		}
		if best > p.now {
			return
		}
		job := p.dispatch[0]
		copy(p.dispatch, p.dispatch[1:])
		p.dispatch = p.dispatch[:len(p.dispatch)-1]

		rec := &p.batches[job.rec]
		rec.Engine = e
		rec.StartSec = p.now
		rec.DoneSec = p.now + job.dur
		p.engineFree[e] = rec.DoneSec
		p.outstanding -= len(job.members)
		for _, m := range job.members {
			tr := &m.resp.Trace
			tr.ComputeStartSec = p.now
			tr.DoneSec = rec.DoneSec
			m.resp.BatchSeq = rec.Seq
			m.resp.BatchSize = len(job.members)
		}
		if p.exec != nil {
			p.exec(job.members)
		}
		if rec.DoneSec > p.makespan {
			p.makespan = rec.DoneSec
		}
		if p.onDone != nil {
			for _, m := range job.members {
				p.onDone(m.resp, rec.DoneSec, p.push)
			}
		}
	}
}

// RunVirtual executes a full serving run on a virtual clock: the
// batcher policy admits/closes/launches on modeled time (lat), while
// every launched batch runs its *real* compute on the shared weights —
// so responses are bitwise reproducible and timings are exactly
// repeatable, independent of host load. This is the deterministic half
// of the serving test suite and the engine behind cmd/serve's virtual
// mode.
func RunVirtual(cfg Config, lat LatencyModel, model *Model, arrivals []Arrival) (*RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	return runPolicy(cfg, lat, model.admissible, newModelExec(model), nil, arrivals), nil
}
