package serve

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/nn"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/vit"
)

// tinyMAECfg is the test-scale architecture every serving test runs:
// the same tiny encoder the mae/vit suites pin.
func tinyMAECfg() mae.Config {
	enc := vit.Config{Name: "tiny", Width: 16, Depth: 2, MLP: 32,
		Heads: 2, PatchSize: 4, ImageSize: 12, Channels: 2}
	return mae.Config{Encoder: enc, DecoderWidth: 8, DecoderDepth: 1,
		DecoderHeads: 2, MaskRatio: 0.5}
}

// synthHead builds a deterministic probe head directly (identity
// standardization, small random weights) — serving tests exercise the
// scoring path, not the fitting recipe.
func synthHead(dim, classes int, seed uint64) *probe.Head {
	r := rng.New(seed)
	h := &probe.Head{
		Dim: dim, Classes: classes,
		W:    make([]float32, dim*classes),
		B:    make([]float32, classes),
		Mean: make([]float64, dim), InvStd: make([]float64, dim),
	}
	for i := range h.W {
		h.W[i] = float32(r.NormFloat64()) * 0.1
	}
	for i := range h.B {
		h.B[i] = float32(r.NormFloat64()) * 0.01
	}
	for i := range h.InvStd {
		h.InvStd[i] = 1
	}
	return h
}

// tinyModel is a fully headed servable model.
func tinyModel(seed uint64) *Model {
	m := NewModel(tinyMAECfg(), seed)
	w := m.MAE.Cfg.Encoder.Width
	m.AttachHeads(synthHead(w, 5, 101), synthHead(w, geodata.SegClasses, 102))
	return m
}

// imageFn renders a deterministic image per request index.
func imageFn(m *Model, seed uint64) func(i int) []float32 {
	n := m.ImageLen()
	return func(i int) []float32 {
		r := rng.New(seed + uint64(i)*0x9e3779b97f4a7c15)
		img := make([]float32, n)
		for j := range img {
			img[j] = float32(r.Float64()*2 - 1)
		}
		return img
	}
}

var mixedKinds = []Kind{Embed, Classify, Segment}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{MaxBatch: 0, QueueCap: 4, Workers: 1},
		{MaxBatch: 2, MaxWaitSec: -1, QueueCap: 4, Workers: 1},
		{MaxBatch: 8, QueueCap: 4, Workers: 1},
		{MaxBatch: 2, QueueCap: 4, Workers: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
}

// TestPolicyBatchComposition pins the batcher's two close triggers on a
// hand-readable schedule: seven requests arriving 1 ms apart against
// MaxBatch 3 close as [0 1 2] (size), [3 4 5] (size), [6] (deadline).
func TestPolicyBatchComposition(t *testing.T) {
	m := tinyModel(7)
	cfg := Config{MaxBatch: 3, MaxWaitSec: 1.0, QueueCap: 16, Workers: 1}
	arrivals := UniformArrivals(1000, 7, mixedKinds, imageFn(m, 1))
	res, err := RunVirtual(cfg, DefaultLatency(m.MAE.Cfg.Encoder), m, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(res.Batches))
	}
	wantIDs := [][]uint64{{0, 1, 2}, {3, 4, 5}, {6}}
	wantReason := []string{"size", "size", "deadline"}
	for i, b := range res.Batches {
		if len(b.IDs) != len(wantIDs[i]) {
			t.Fatalf("batch %d has %d members, want %d", i, len(b.IDs), len(wantIDs[i]))
		}
		for j, id := range b.IDs {
			if id != wantIDs[i][j] {
				t.Errorf("batch %d member %d = request %d, want %d", i, j, id, wantIDs[i][j])
			}
		}
		if b.Reason != wantReason[i] {
			t.Errorf("batch %d closed for %q, want %q", i, b.Reason, wantReason[i])
		}
	}
	// The deadline batch closes exactly MaxWait after request 6 arrived.
	if got, want := res.Batches[2].CloseSec, arrivals[6].AtSec+cfg.MaxWaitSec; got != want {
		t.Errorf("deadline close at %v, want %v", got, want)
	}
	for _, r := range res.Responses {
		if r.Err != nil {
			t.Errorf("request %d failed: %v", r.ID, r.Err)
		}
	}
}

// TestShedOnFull drives a burst into a tiny queue behind a busy engine
// and checks overflow sheds instead of queueing without bound.
func TestShedOnFull(t *testing.T) {
	m := tinyModel(7)
	cfg := Config{MaxBatch: 2, MaxWaitSec: 1.0, QueueCap: 2, Workers: 1}
	// Slow engine: every batch takes 1 s, so the burst overruns the cap.
	var lat LatencyModel
	lat.LaunchSec = 0.1
	for k := Kind(0); k < numKinds; k++ {
		lat.PerItemSec[k] = 1
	}
	arrivals := UniformArrivals(1e6, 6, []Kind{Embed}, imageFn(m, 2))
	res, err := RunVirtual(cfg, lat, m, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	// 0,1 close and launch; 2,3 close and queue (outstanding 2);
	// 4 and 5 find the queue full.
	if res.Shed != 2 {
		t.Fatalf("shed %d requests, want 2", res.Shed)
	}
	for _, id := range []uint64{4, 5} {
		if !errors.Is(res.Responses[id].Err, ErrShed) {
			t.Errorf("request %d: err %v, want ErrShed", id, res.Responses[id].Err)
		}
	}
	for _, id := range []uint64{0, 1, 2, 3} {
		if res.Responses[id].Err != nil {
			t.Errorf("request %d failed: %v", id, res.Responses[id].Err)
		}
		if res.Responses[id].Embedding == nil {
			t.Errorf("request %d served without payload", id)
		}
	}
}

// sameRun asserts two virtual runs are identical to the last bit:
// batch log, traces, and response payloads.
func sameRun(t *testing.T, a, b *RunResult) {
	t.Helper()
	if len(a.Batches) != len(b.Batches) {
		t.Fatalf("batch counts differ: %d vs %d", len(a.Batches), len(b.Batches))
	}
	for i := range a.Batches {
		x, y := a.Batches[i], b.Batches[i]
		if x.Engine != y.Engine || x.Reason != y.Reason ||
			x.CloseSec != y.CloseSec || x.StartSec != y.StartSec || x.DoneSec != y.DoneSec {
			t.Fatalf("batch %d differs: %+v vs %+v", i, x, y)
		}
		if len(x.IDs) != len(y.IDs) {
			t.Fatalf("batch %d sizes differ", i)
		}
		for j := range x.IDs {
			if x.IDs[j] != y.IDs[j] || x.Kinds[j] != y.Kinds[j] {
				t.Fatalf("batch %d member %d differs", i, j)
			}
		}
	}
	if len(a.Responses) != len(b.Responses) {
		t.Fatalf("response counts differ")
	}
	for i := range a.Responses {
		x, y := a.Responses[i], b.Responses[i]
		if x.Trace != y.Trace {
			t.Fatalf("request %d traces differ: %+v vs %+v", i, x.Trace, y.Trace)
		}
		if !errors.Is(x.Err, y.Err) && !errors.Is(y.Err, x.Err) {
			t.Fatalf("request %d errors differ: %v vs %v", i, x.Err, y.Err)
		}
		sameFloats := func(label string, p, q []float32) {
			if len(p) != len(q) {
				t.Fatalf("request %d %s lengths differ", i, label)
			}
			for j := range p {
				if p[j] != q[j] {
					t.Fatalf("request %d %s[%d]: %v vs %v", i, label, j, p[j], q[j])
				}
			}
		}
		sameFloats("embedding", x.Embedding, y.Embedding)
		sameFloats("logits", x.Logits, y.Logits)
		if len(x.Labels) != len(y.Labels) {
			t.Fatalf("request %d label lengths differ", i)
		}
		for j := range x.Labels {
			if x.Labels[j] != y.Labels[j] {
				t.Fatalf("request %d label %d differs", i, j)
			}
		}
	}
	if a.MakespanSec != b.MakespanSec || a.Shed != b.Shed {
		t.Fatalf("summary differs: makespan %v vs %v, shed %d vs %d",
			a.MakespanSec, b.MakespanSec, a.Shed, b.Shed)
	}
}

// TestReplayDeterminism is the deterministic-serving property: the same
// request stream (same seed, virtual clock) produces bitwise-identical
// responses and identical batch compositions on every run. Running
// under -race additionally checks the shared-weights path never races.
func TestReplayDeterminism(t *testing.T) {
	cfg := Config{MaxBatch: 4, MaxWaitSec: 2e-3, QueueCap: 16, Workers: 2}
	run := func() *RunResult {
		m := tinyModel(7)
		lat := DefaultLatency(m.MAE.Cfg.Encoder)
		arrivals := PoissonArrivals(600, 60, mixedKinds, imageFn(m, 3), 42)
		res, err := RunVirtual(cfg, lat, m, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sameRun(t, run(), run())
}

// TestVirtualMatchesSimulate holds the virtual executor to the serving
// simulator exactly: same stream, same policy, and every timestamp in
// every batch and trace agrees bitwise — the executed-vs-simulated
// contract with zero tolerance, because both sides run the same float
// operations.
func TestVirtualMatchesSimulate(t *testing.T) {
	m := tinyModel(7)
	lat := DefaultLatency(m.MAE.Cfg.Encoder)
	for _, cfg := range []Config{
		{MaxBatch: 4, MaxWaitSec: 2e-3, QueueCap: 16, Workers: 1},
		{MaxBatch: 8, MaxWaitSec: 5e-3, QueueCap: 32, Workers: 2},
	} {
		arrivals := PoissonArrivals(800, 80, mixedKinds, imageFn(m, 4), 13)
		virt, err := RunVirtual(cfg, lat, m, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Simulate(cfg, lat, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		simr := rep.Run
		if len(virt.Batches) != len(simr.Batches) {
			t.Fatalf("batch counts differ: virtual %d, sim %d", len(virt.Batches), len(simr.Batches))
		}
		for i := range virt.Batches {
			v, s := virt.Batches[i], simr.Batches[i]
			if v.CloseSec != s.CloseSec || v.StartSec != s.StartSec ||
				v.DoneSec != s.DoneSec || v.Engine != s.Engine || v.Reason != s.Reason {
				t.Fatalf("batch %d: virtual %+v, sim %+v", i, v, s)
			}
			if want := v.StartSec - v.CloseSec; rep.DispatchWaitSec[i] != want {
				t.Fatalf("batch %d dispatch wait %v, want %v", i, rep.DispatchWaitSec[i], want)
			}
		}
		for i := range virt.Responses {
			if virt.Responses[i].Trace != simr.Responses[i].Trace {
				t.Fatalf("request %d: virtual trace %+v, sim trace %+v",
					i, virt.Responses[i].Trace, simr.Responses[i].Trace)
			}
		}
		if virt.MakespanSec != simr.MakespanSec {
			t.Fatalf("makespan: virtual %v, sim %v", virt.MakespanSec, simr.MakespanSec)
		}
	}
}

// TestClosedLoop checks the closed-loop generator: every client keeps
// exactly one request in flight, all requests serve, and the run is
// deterministic.
func TestClosedLoop(t *testing.T) {
	m := tinyModel(7)
	cfg := Config{MaxBatch: 4, MaxWaitSec: 1e-3, QueueCap: 16, Workers: 1}
	cl := ClosedLoop{Clients: 3, PerClient: 5, ThinkSec: 1e-3,
		Mix: mixedKinds, Image: imageFn(m, 5)}
	run := func() *RunResult {
		res, err := RunClosedLoop(cfg, DefaultLatency(m.MAE.Cfg.Encoder), m, cl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if want := cl.Clients * cl.PerClient; len(a.Responses) != want {
		t.Fatalf("%d responses, want %d", len(a.Responses), want)
	}
	last := map[int]float64{}
	inFlight := map[int]int{}
	for _, r := range a.Responses {
		if r.Err != nil {
			t.Fatalf("request %d failed: %v", r.ID, r.Err)
		}
		// One in flight: this request arrived no earlier than the
		// client's previous completion plus think time.
		if prev, ok := last[r.Client]; ok && r.Trace.ArrivalSec < prev {
			t.Fatalf("client %d overlapped requests", r.Client)
		}
		last[r.Client] = r.Trace.DoneSec + cl.ThinkSec
		inFlight[r.Client]++
	}
	for c := 0; c < cl.Clients; c++ {
		if inFlight[c] != cl.PerClient {
			t.Fatalf("client %d issued %d requests, want %d", c, inFlight[c], cl.PerClient)
		}
	}
	sameRun(t, a, run())
}

// TestWallServer exercises the goroutine server end to end: concurrent
// submitters, drain, and every delivered payload re-derivable bitwise
// from the batch log by replaying each recorded composition through
// the same weights.
func TestWallServer(t *testing.T) {
	m := tinyModel(7)
	cfg := Config{MaxBatch: 4, MaxWaitSec: 1e-3, QueueCap: 64, Workers: 2}
	s, err := NewServer(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	img := imageFn(m, 6)
	imgs := make([][]float32, n)
	chans := make([]<-chan *Response, n)
	for i := 0; i < n; i++ {
		imgs[i] = img(i)
		ch, err := s.Submit(mixedKinds[i%len(mixedKinds)], imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	got := make([]*Response, n)
	for i, ch := range chans {
		got[i] = <-ch
	}
	st := s.Drain()
	if st.Served != n || st.Shed != 0 {
		t.Fatalf("served %d shed %d, want %d/0", st.Served, st.Shed, n)
	}
	if _, err := s.Submit(Embed, imgs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Drain: %v, want ErrClosed", err)
	}

	// Rebuild every response from the recorded batch compositions.
	covered := make([]bool, n)
	for _, b := range st.Batches {
		reqs := make([]*Request, len(b.IDs))
		refs := make([]*Response, len(b.IDs))
		for j, id := range b.IDs {
			if covered[id] {
				t.Fatalf("request %d appears in two batches", id)
			}
			covered[id] = true
			reqs[j] = &Request{ID: id, Kind: b.Kinds[j], Img: imgs[id]}
			refs[j] = &Response{ID: id, Kind: b.Kinds[j]}
		}
		for j := 1; j < len(b.IDs); j++ {
			if b.IDs[j] <= b.IDs[j-1] {
				t.Fatalf("batch %d members out of admission order: %v", b.Seq, b.IDs)
			}
		}
		m.Fill(nn.NewInferCtx(), reqs, refs)
		for j, id := range b.IDs {
			r, ref := got[id], refs[j]
			for k := range ref.Embedding {
				if r.Embedding[k] != ref.Embedding[k] {
					t.Fatalf("request %d embedding[%d] differs from replay", id, k)
				}
			}
			for k := range ref.Logits {
				if r.Logits[k] != ref.Logits[k] {
					t.Fatalf("request %d logits[%d] differs from replay", id, k)
				}
			}
			for k := range ref.Labels {
				if r.Labels[k] != ref.Labels[k] {
					t.Fatalf("request %d label[%d] differs from replay", id, k)
				}
			}
		}
	}
	for id, ok := range covered {
		if !ok {
			t.Fatalf("request %d missing from batch log", id)
		}
	}
	for _, r := range got {
		tr := r.Trace
		if !(tr.ArrivalSec <= tr.BatchFormSec && tr.BatchFormSec <= tr.ComputeStartSec &&
			tr.ComputeStartSec <= tr.DoneSec) {
			t.Fatalf("request %d trace not monotone: %+v", r.ID, tr)
		}
	}
}

// TestWallServerRejects pins the immediate-completion paths.
func TestWallServerRejects(t *testing.T) {
	m := NewModel(tinyMAECfg(), 7) // no heads
	cfg := DefaultConfig()
	s, err := NewServer(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ch, err := s.Submit(Classify, make([]float32, m.ImageLen()))
	if err != nil {
		t.Fatal(err)
	}
	if r := <-ch; !errors.Is(r.Err, ErrNoHead) {
		t.Fatalf("headless classify: %v, want ErrNoHead", r.Err)
	}
	ch, err = s.Submit(Embed, make([]float32, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r := <-ch; !errors.Is(r.Err, ErrBadRequest) {
		t.Fatalf("short image: %v, want ErrBadRequest", r.Err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := Percentile(xs, 0.99); got != 5 {
		t.Fatalf("p99 = %v, want 5", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	// Percentile must not reorder its input.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummarizeAndTable(t *testing.T) {
	m := tinyModel(7)
	cfg := Config{MaxBatch: 4, MaxWaitSec: 2e-3, QueueCap: 8, Workers: 1}
	arrivals := PoissonArrivals(2000, 50, mixedKinds, imageFn(m, 8), 9)
	res, err := RunVirtual(cfg, DefaultLatency(m.MAE.Cfg.Encoder), m, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	rep := Summarize("poisson-2000", res)
	if rep.Served+rep.Shed+rep.Rejected != rep.Total {
		t.Fatalf("counts do not add up: %+v", rep)
	}
	if rep.Total != 50 {
		t.Fatalf("total %d, want 50", rep.Total)
	}
	if rep.QueueP50 > rep.QueueP99 || rep.TotalP50 > rep.TotalP99 {
		t.Fatalf("percentiles out of order: %+v", rep)
	}
	if rep.TotalP50 < rep.QueueP50 {
		t.Fatalf("total latency below queue wait: %+v", rep)
	}
	if rep.Served > 0 && rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput %v with %d served", rep.ThroughputRPS, rep.Served)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Fatalf("utilization %v outside (0,1]", rep.Utilization)
	}
	nBatches := 0
	for _, c := range rep.BatchHist {
		nBatches += c
	}
	if nBatches != len(res.Batches) {
		t.Fatalf("histogram covers %d batches, want %d", nBatches, len(res.Batches))
	}
	table := RenderTable([]Report{rep})
	if !strings.Contains(table, "poisson-2000") || !strings.Contains(table, "q_p99ms") {
		t.Fatalf("table missing fields:\n%s", table)
	}
}
