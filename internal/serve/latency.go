package serve

import (
	"fmt"

	"repro/internal/calib"
	"repro/internal/geodata"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/vit"
)

// LatencyModel prices one batch execution on one engine: a fixed
// launch cost plus a per-request compute term, i.e. the α–β curve
// τ(batch) = Launch + Σᵢ PerItem(kindᵢ). This is the constant the
// virtual driver stamps time with and the serving simulator prices
// its batch tasks with; on a homogeneous batch it coincides with
// hw.Machine.InferLatency.
type LatencyModel struct {
	// LaunchSec is the fixed per-batch host cost (dispatch, gather).
	LaunchSec float64
	// PerItemSec is the modeled compute seconds per request by kind.
	PerItemSec [numKinds]float64
}

// BatchSec returns the modeled execution time of one batch.
func (l LatencyModel) BatchSec(kinds []Kind) float64 {
	if len(kinds) == 0 {
		return 0
	}
	d := l.LaunchSec
	for _, k := range kinds {
		d += l.PerItemSec[k]
	}
	return d
}

// Validate reports non-physical models.
func (l LatencyModel) Validate() error {
	if l.LaunchSec < 0 {
		return fmt.Errorf("serve: negative launch cost %v", l.LaunchSec)
	}
	for k := Kind(0); k < numKinds; k++ {
		if l.PerItemSec[k] <= 0 {
			return fmt.Errorf("serve: non-positive per-item latency for %s", k)
		}
	}
	return nil
}

// String renders the curve for reports.
func (l LatencyModel) String() string {
	return fmt.Sprintf("launch %.3fms + %.3fms/embed + %.3fms/classify + %.3fms/segment",
		1e3*l.LaunchSec, 1e3*l.PerItemSec[Embed], 1e3*l.PerItemSec[Classify], 1e3*l.PerItemSec[Segment])
}

// LatencyFromMachine derives the batch-latency curve for serving enc
// on machine m: the per-image term is the full-token ViT forward FLOP
// count (perfmodel, the same accounting fsdp.Simulate prices training
// with) over the machine's effective FLOP rate, and the launch term is
// the machine's per-call fixed cost. Embed and Classify price as the
// encoder forward (the classification head's W·classes GEMM is noise
// against it); Segment adds the per-token head term.
func LatencyFromMachine(m hw.Machine, enc vit.Config) LatencyModel {
	w := perfmodel.ViTWorkload(enc, 1)
	eff := m.EffectiveFLOPS()
	base := w.TotalForwardFLOPs() / eff
	segHead := 2 * float64(enc.Tokens()) * float64(enc.Width) * float64(geodata.SegClasses) / eff
	var lm LatencyModel
	lm.LaunchSec = m.CollectiveLaunch
	lm.PerItemSec[Embed] = base
	lm.PerItemSec[Classify] = base
	lm.PerItemSec[Segment] = base + segHead
	return lm
}

// LatencyFromProfile derives the curve from a measured hardware
// profile (cmd/calibrate output): MachineFor turns the profile's
// roofline, train-probe discount and contention into a calibrated
// hw.Machine, and the curve follows from it — so a serving simulation
// can be priced with this host's measurement instead of asserted
// constants.
func LatencyFromProfile(p *calib.HardwareProfile, enc vit.Config) (LatencyModel, error) {
	m, err := p.MachineFor(perfmodel.ViTWorkload(enc, 1), 1)
	if err != nil {
		return LatencyModel{}, err
	}
	return LatencyFromMachine(m, enc), nil
}

// DefaultLatency is LatencyFromMachine over the asserted laptop-class
// host — the deterministic default the golden tests and benchmarks
// pin.
func DefaultLatency(enc vit.Config) LatencyModel {
	return LatencyFromMachine(hw.DefaultHost(), enc)
}
