package serve

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/probe"
	"repro/internal/tensor"
)

// TestServeMatchesTrainingPath is the inference/training equivalence
// contract at the serving boundary: a served batch's embeddings,
// logits, and labels are bitwise identical to running the training
// path's extractors (mae.Features / mae.TokenFeatures + the probe
// head) over the same image batch.
func TestServeMatchesTrainingPath(t *testing.T) {
	m := tinyModel(7)
	img := imageFn(m, 21)
	const n = 5
	imgLen := m.ImageLen()
	enc := m.MAE.Cfg.Encoder
	w, tok := enc.Width, enc.Tokens()

	// One mixed batch through the serving path.
	reqs := make([]*Request, n)
	resps := make([]*Response, n)
	batchImgs := make([]float32, n*imgLen)
	for i := 0; i < n; i++ {
		im := img(i)
		copy(batchImgs[i*imgLen:(i+1)*imgLen], im)
		reqs[i] = &Request{ID: uint64(i), Kind: mixedKinds[i%len(mixedKinds)], Img: im}
		resps[i] = &Response{ID: uint64(i), Kind: reqs[i].Kind}
	}
	m.Fill(nn.NewInferCtx(), reqs, resps)

	// The same batch through the training-path extractors.
	pooled := m.MAE.Features(batchImgs, n)
	tokens := m.MAE.TokenFeatures(batchImgs, n)

	for i := 0; i < n; i++ {
		switch reqs[i].Kind {
		case Embed:
			for j := 0; j < w; j++ {
				if resps[i].Embedding[j] != pooled[i*w+j] {
					t.Fatalf("request %d embedding[%d]: serve %v, training %v",
						i, j, resps[i].Embedding[j], pooled[i*w+j])
				}
			}
		case Classify:
			want := make([]float32, m.Cls.Classes)
			scratch := make([]float32, w)
			m.Cls.LogitsInto(want, pooled[i*w:(i+1)*w], scratch, 1)
			for j := range want {
				if resps[i].Logits[j] != want[j] {
					t.Fatalf("request %d logits[%d]: serve %v, training %v",
						i, j, resps[i].Logits[j], want[j])
				}
			}
		case Segment:
			logits := make([]float32, tok*m.Seg.Classes)
			scratch := make([]float32, tok*w)
			m.Seg.LogitsInto(logits, tokens[i*tok*w:(i+1)*tok*w], scratch, tok)
			for j := 0; j < tok; j++ {
				want := uint8(probe.Argmax(logits[j*m.Seg.Classes : (j+1)*m.Seg.Classes]))
				if resps[i].Labels[j] != want {
					t.Fatalf("request %d label[%d]: serve %d, training %d",
						i, j, resps[i].Labels[j], want)
				}
			}
		}
	}
}

// TestRowIndependence pins a property the wall-clock server depends
// on: a request's served payload does not depend on which other
// requests shared its batch — every per-row kernel (GEMM rows,
// LayerNorm, per-image attention, pooling) processes a row with the
// same operation order whatever the batch size.
func TestRowIndependence(t *testing.T) {
	m := tinyModel(7)
	img := imageFn(m, 22)
	const n = 4
	reqs := make([]*Request, n)
	resps := make([]*Response, n)
	for i := 0; i < n; i++ {
		reqs[i] = &Request{ID: uint64(i), Kind: Embed, Img: img(i)}
		resps[i] = &Response{ID: uint64(i), Kind: Embed}
	}
	m.Fill(nn.NewInferCtx(), reqs, resps)
	for i := 0; i < n; i++ {
		solo := []*Response{{ID: uint64(i), Kind: Embed}}
		m.Fill(nn.NewInferCtx(), reqs[i:i+1], solo)
		for j := range solo[0].Embedding {
			if resps[i].Embedding[j] != solo[0].Embedding[j] {
				t.Fatalf("request %d embedding[%d] depends on batch composition: %v vs %v",
					i, j, resps[i].Embedding[j], solo[0].Embedding[j])
			}
		}
	}
}

// TestServeBF16 checks the reduced-precision serving mode: bf16-loaded
// weights answer within tolerance of the fp32 model, deterministically.
func TestServeBF16(t *testing.T) {
	serveOne := func(m *Model, img []float32) *Response {
		reqs := []*Request{{ID: 0, Kind: Classify, Img: img}}
		resps := []*Response{{ID: 0, Kind: Classify}}
		m.Fill(nn.NewInferCtx(), reqs, resps)
		return resps[0]
	}
	fp := tinyModel(7)
	bf := tinyModel(7)
	bf.RoundBF16()
	if !bf.BF16 {
		t.Fatal("RoundBF16 did not flag the model")
	}
	img := imageFn(fp, 23)(0)

	a := serveOne(fp, img)
	b := serveOne(bf, img)
	for j := range a.Logits {
		fa, fb := float64(a.Logits[j]), float64(b.Logits[j])
		if math.IsNaN(fb) || math.IsInf(fb, 0) {
			t.Fatalf("bf16 logit %d not finite: %v", j, fb)
		}
		diff := math.Abs(fa - fb)
		if diff > 5e-2*(1+math.Abs(fa)) {
			t.Fatalf("bf16 logit %d drifted: fp32 %v, bf16 %v", j, fa, fb)
		}
	}
	// bf16 serving is itself deterministic.
	c := serveOne(bf, img)
	for j := range b.Logits {
		if b.Logits[j] != c.Logits[j] {
			t.Fatalf("bf16 serving not deterministic at logit %d", j)
		}
	}
	// Rounding the weights twice is a no-op (bf16 is a fixed point of
	// the rounding), so reload paths can round unconditionally.
	bf.RoundBF16()
	d := serveOne(bf, img)
	for j := range b.Logits {
		if b.Logits[j] != d.Logits[j] {
			t.Fatalf("double bf16 rounding changed logit %d", j)
		}
	}
}

// stripBF16Shadows removes every packed bf16 weight shadow so the
// inference path falls back to the fp32 (pre-rounded) weights.
func stripBF16Shadows(m *Model) {
	m.MAE.Embed.Proj.WBF16 = nil
	for _, b := range m.MAE.Encoder.Blocks {
		b.Attn.QKV.WBF16 = nil
		b.Attn.Out.WBF16 = nil
		b.MLP.FC1.WBF16 = nil
		b.MLP.FC2.WBF16 = nil
	}
}

// TestServeBF16PackedWeightsBitwise pins the bf16 compute contract:
// serving through the packed 2-byte weight shadows (tensor.MatMulBF16,
// widen-in-pack) is bitwise identical to serving through the rounded
// fp32 weights. This is what lets the packed mode drop the fp32 weight
// round-trip without perturbing a single served value.
func TestServeBF16PackedWeightsBitwise(t *testing.T) {
	serveOne := func(m *Model, img []float32) *Response {
		reqs := []*Request{{ID: 0, Kind: Embed, Img: img}}
		resps := []*Response{{ID: 0, Kind: Embed}}
		m.Fill(nn.NewInferCtx(), reqs, resps)
		return resps[0]
	}
	m := tinyModel(7)
	m.RoundBF16()
	if m.MAE.Embed.Proj.WBF16 == nil {
		t.Fatal("RoundBF16 did not pack bf16 weight shadows")
	}
	img := imageFn(m, 24)(0)

	packed := serveOne(m, img)
	stripBF16Shadows(m)
	fp32 := serveOne(m, img)
	for j := range packed.Embedding {
		if packed.Embedding[j] != fp32.Embedding[j] {
			t.Fatalf("embedding[%d]: packed bf16 %v, fp32 %v (must be bitwise equal)",
				j, packed.Embedding[j], fp32.Embedding[j])
		}
	}
}

// FuzzInferBF16 fuzzes single-image payloads through the bf16 serving
// mode and asserts the boundary properties that must hold for *any*
// finite input: input rounding is idempotent, outputs are finite, and
// serving is deterministic.
func FuzzInferBF16(f *testing.F) {
	f.Add(uint64(1), float32(0.5), float32(-0.25))
	f.Add(uint64(9), float32(3e4), float32(1e-4))
	f.Add(uint64(42), float32(-1), float32(1))
	model := tinyModel(7)
	model.RoundBF16()
	imgLen := model.ImageLen()
	f.Fuzz(func(t *testing.T, seed uint64, a, b float32) {
		if math.IsNaN(float64(a)) || math.IsInf(float64(a), 0) ||
			math.IsNaN(float64(b)) || math.IsInf(float64(b), 0) {
			t.Skip("non-finite seed values")
		}
		// Clamp to a sane dynamic range so the encoder's exponentials
		// stay finite — the serving boundary's admission contract is
		// about shape, not range.
		clamp := func(v float32) float32 {
			if v > 1e4 {
				return 1e4
			}
			if v < -1e4 {
				return -1e4
			}
			return v
		}
		a, b = clamp(a), clamp(b)
		r := newSplitMix(seed)
		img := make([]float32, imgLen)
		for i := range img {
			if r()%2 == 0 {
				img[i] = a
			} else {
				img[i] = b
			}
		}
		rounded := make([]float32, imgLen)
		tensor.RoundBF16(rounded, img)
		twice := make([]float32, imgLen)
		tensor.RoundBF16(twice, rounded)
		for i := range rounded {
			if rounded[i] != twice[i] {
				t.Fatalf("bf16 rounding not idempotent at %d: %v vs %v", i, rounded[i], twice[i])
			}
		}
		run := func() *Response {
			reqs := []*Request{{ID: 0, Kind: Embed, Img: img}}
			resps := []*Response{{ID: 0, Kind: Embed}}
			model.Fill(nn.NewInferCtx(), reqs, resps)
			return resps[0]
		}
		x, y := run(), run()
		for j := range x.Embedding {
			v := float64(x.Embedding[j])
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("embedding[%d] not finite: %v", j, v)
			}
			if x.Embedding[j] != y.Embedding[j] {
				t.Fatalf("bf16 serving not deterministic at %d", j)
			}
		}
	})
}
