package serve

import (
	"errors"
	"testing"
)

// checkInvariants asserts the batcher's safety properties on any run:
// every admitted request completes exactly once (served in exactly one
// batch, or shed/rejected in none), batches respect MaxBatch and
// admission order, traces are monotone, engines never overlap, and
// batches launch FIFO.
func checkInvariants(t *testing.T, cfg Config, res *RunResult) {
	t.Helper()
	inBatch := make(map[uint64]int)
	for _, b := range res.Batches {
		if len(b.IDs) == 0 || len(b.IDs) > cfg.MaxBatch {
			t.Fatalf("batch %d size %d outside [1,%d]", b.Seq, len(b.IDs), cfg.MaxBatch)
		}
		if b.Reason != "size" && b.Reason != "deadline" && b.Reason != "drain" {
			t.Fatalf("batch %d has unknown close reason %q", b.Seq, b.Reason)
		}
		if b.Engine < 0 || b.Engine >= cfg.Workers {
			t.Fatalf("batch %d ran on engine %d of %d", b.Seq, b.Engine, cfg.Workers)
		}
		if !(b.CloseSec <= b.StartSec && b.StartSec <= b.DoneSec) {
			t.Fatalf("batch %d times not monotone: %+v", b.Seq, b)
		}
		for j, id := range b.IDs {
			if j > 0 && id <= b.IDs[j-1] {
				t.Fatalf("batch %d violates admission order: %v", b.Seq, b.IDs)
			}
			if prev, dup := inBatch[id]; dup {
				t.Fatalf("request %d in batches %d and %d", id, prev, b.Seq)
			}
			inBatch[id] = b.Seq
		}
	}
	// FIFO launch: start times never decrease across the batch log.
	for i := 1; i < len(res.Batches); i++ {
		if res.Batches[i].StartSec < res.Batches[i-1].StartSec {
			t.Fatalf("batch %d launched before batch %d", i, i-1)
		}
	}
	// Engines serial: per-engine busy intervals must not overlap.
	lastDone := make([]float64, cfg.Workers)
	for _, b := range res.Batches {
		if b.StartSec < lastDone[b.Engine] {
			t.Fatalf("engine %d overlaps batches at %v", b.Engine, b.StartSec)
		}
		lastDone[b.Engine] = b.DoneSec
	}
	shed := 0
	for i, r := range res.Responses {
		if r.ID != uint64(i) {
			t.Fatalf("response %d carries ID %d", i, r.ID)
		}
		tr := r.Trace
		if !(tr.ArrivalSec <= tr.BatchFormSec && tr.BatchFormSec <= tr.ComputeStartSec &&
			tr.ComputeStartSec <= tr.DoneSec) {
			t.Fatalf("request %d trace not monotone: %+v", r.ID, tr)
		}
		_, rode := inBatch[r.ID]
		if r.Err == nil && !rode {
			t.Fatalf("request %d served but missing from every batch", r.ID)
		}
		if r.Err != nil && rode {
			t.Fatalf("request %d failed (%v) yet rode batch %d", r.ID, r.Err, inBatch[r.ID])
		}
		if errors.Is(r.Err, ErrShed) {
			shed++
		}
	}
	if shed != res.Shed {
		t.Fatalf("shed count %d disagrees with responses %d", res.Shed, shed)
	}
	if len(inBatch)+shed > len(res.Responses) {
		t.Fatalf("more outcomes than requests")
	}
}

// simpleLat is a hand-set latency curve for policy-only tests.
func simpleLat(perItem, launch float64) LatencyModel {
	var l LatencyModel
	l.LaunchSec = launch
	for k := Kind(0); k < numKinds; k++ {
		l.PerItemSec[k] = perItem
	}
	return l
}

// TestAdversarialPatterns drives the batcher through the arrival
// shapes most likely to break a deadline/size state machine and checks
// both the invariants and the expected batch shapes.
func TestAdversarialPatterns(t *testing.T) {
	lat := simpleLat(1e-3, 1e-4)

	t.Run("zero-wait", func(t *testing.T) {
		// MaxWait 0: every request closes its own batch at its arrival.
		cfg := Config{MaxBatch: 4, MaxWaitSec: 0, QueueCap: 32, Workers: 1}
		arrivals := make([]Arrival, 10)
		for i := range arrivals {
			arrivals[i] = Arrival{AtSec: float64(i) * 1e-4, Kind: Embed}
		}
		rep, err := Simulate(cfg, lat, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, cfg, rep.Run)
		if len(rep.Run.Batches) != 10 {
			t.Fatalf("%d batches, want 10 singletons", len(rep.Run.Batches))
		}
		for _, b := range rep.Run.Batches {
			if len(b.IDs) != 1 || b.Reason != "deadline" {
				t.Fatalf("zero-wait batch not a deadline singleton: %+v", b)
			}
		}
	})

	t.Run("all-at-once", func(t *testing.T) {
		// 11 requests at t=0 against MaxBatch 4: three size closes and a
		// deadline remainder of 3.
		cfg := Config{MaxBatch: 4, MaxWaitSec: 5e-3, QueueCap: 32, Workers: 2}
		arrivals := make([]Arrival, 11)
		for i := range arrivals {
			arrivals[i] = Arrival{Kind: Embed}
		}
		rep, err := Simulate(cfg, lat, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, cfg, rep.Run)
		sizes := []int{}
		for _, b := range rep.Run.Batches {
			sizes = append(sizes, len(b.IDs))
		}
		want := []int{4, 4, 3}
		if len(sizes) != len(want) {
			t.Fatalf("batch sizes %v, want %v", sizes, want)
		}
		for i := range want {
			if sizes[i] != want[i] {
				t.Fatalf("batch sizes %v, want %v", sizes, want)
			}
		}
		if last := rep.Run.Batches[2]; last.Reason != "deadline" || last.CloseSec != cfg.MaxWaitSec {
			t.Fatalf("remainder batch: %+v, want deadline close at %v", last, cfg.MaxWaitSec)
		}
	})

	t.Run("staggered-past-deadline", func(t *testing.T) {
		// Each arrival lands just after the previous one's deadline
		// fires: all singleton deadline batches, never a pair.
		cfg := Config{MaxBatch: 4, MaxWaitSec: 1e-3, QueueCap: 32, Workers: 1}
		gap := cfg.MaxWaitSec * 1.01
		arrivals := make([]Arrival, 8)
		for i := range arrivals {
			arrivals[i] = Arrival{AtSec: float64(i) * gap, Kind: Classify}
		}
		rep, err := Simulate(cfg, lat, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, cfg, rep.Run)
		for _, b := range rep.Run.Batches {
			if len(b.IDs) != 1 || b.Reason != "deadline" {
				t.Fatalf("staggered batch not a deadline singleton: %+v", b)
			}
		}
	})

	t.Run("arrival-on-deadline-instant", func(t *testing.T) {
		// A request arriving exactly when the deadline fires must miss
		// the closing batch (deadline beats arrival at equal times).
		cfg := Config{MaxBatch: 4, MaxWaitSec: 1e-3, QueueCap: 32, Workers: 1}
		arrivals := []Arrival{
			{AtSec: 0, Kind: Embed},
			{AtSec: 1e-3, Kind: Embed},
		}
		rep, err := Simulate(cfg, lat, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, cfg, rep.Run)
		if len(rep.Run.Batches) != 2 {
			t.Fatalf("%d batches, want 2 (deadline must beat the simultaneous arrival)",
				len(rep.Run.Batches))
		}
	})
}

// FuzzBatcher feeds the policy machine arbitrary arrival shapes and
// configurations and asserts the invariants: no request lost, none
// duplicated, none served out of admission order within a batch.
func FuzzBatcher(f *testing.F) {
	f.Add(uint64(1), uint8(20), uint8(4), uint32(2000), uint8(16), uint8(1), uint8(0))
	f.Add(uint64(2), uint8(50), uint8(1), uint32(0), uint8(1), uint8(2), uint8(1))
	f.Add(uint64(3), uint8(40), uint8(8), uint32(100), uint8(8), uint8(3), uint8(2))
	f.Add(uint64(4), uint8(30), uint8(3), uint32(1000000), uint8(4), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, nReq, maxBatch uint8, waitMicros uint32, queueCap, workers, pattern uint8) {
		n := int(nReq%64) + 1
		cfg := Config{
			MaxBatch:   int(maxBatch%16) + 1,
			MaxWaitSec: float64(waitMicros%2_000_001) * 1e-6,
			Workers:    int(workers%4) + 1,
		}
		cfg.QueueCap = cfg.MaxBatch + int(queueCap%32)
		r := newSplitMix(seed)
		arrivals := make([]Arrival, n)
		at := 0.0
		for i := range arrivals {
			switch pattern % 3 {
			case 0: // bursty: clumps at shared instants
				if r()%4 == 0 {
					at += float64(r()%1000) * 1e-6
				}
			case 1: // smooth: strictly increasing micro-gaps
				at += float64(r()%500+1) * 1e-6
			default: // storm: everything at t=0
			}
			arrivals[i] = Arrival{AtSec: at, Kind: Kind(r() % uint64(numKinds))}
		}
		rep, err := Simulate(cfg, simpleLat(1e-4+float64(seed%7)*1e-4, 1e-5), arrivals)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, cfg, rep.Run)
		if len(rep.Run.Responses) != n {
			t.Fatalf("%d responses for %d requests", len(rep.Run.Responses), n)
		}
	})
}

// newSplitMix is a tiny local generator for fuzz-case shaping (the
// repo's rng package would also do, but the fuzzer wants something
// allocation-free).
func newSplitMix(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}
