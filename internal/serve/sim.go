package serve

import (
	"fmt"

	"repro/internal/sim"
)

// SimReplay is a serving simulation cross-checked against the
// internal/sim discrete-event engine: the policy run itself plus the
// quantities the replay exposes — per-batch dispatch wait (how long a
// closed batch sat behind busy engines) and per-engine busy time.
type SimReplay struct {
	Run *RunResult
	// DispatchWaitSec[b] is batch b's StartSec − CloseSec as recovered
	// by sim.Task.QueueDelay on the replayed task graph.
	DispatchWaitSec []float64
	// EngineBusySec[e] is the total modeled compute time on engine e.
	EngineBusySec []float64
}

// Utilization returns aggregate engine busy time over engines ×
// makespan (0 for an empty run).
func (r *SimReplay) Utilization() float64 {
	if r.Run.MakespanSec <= 0 {
		return 0
	}
	busy := 0.0
	for _, b := range r.EngineBusySec {
		busy += b
	}
	return busy / (float64(len(r.EngineBusySec)) * r.Run.MakespanSec)
}

// Simulate runs the serving policy with no compute at all — the pure
// simulator — and then replays the resulting batch schedule through
// the internal/sim engine (the same discrete-event machinery the FSDP
// training simulator runs on) as a cross-check: each batch becomes a
// task on its engine's FIFO stream, gated by a dependency that
// finishes at the batch's close time, priced by the same
// LatencyModel.BatchSec call the policy used. The two engines compute
// start/end through identical float operations, so the replay must
// agree bitwise; any mismatch is a policy bug and returns an error.
//
// Simulate assumes a well-formed request stream (no admission
// validation — there is no model here to validate against); queue
// sheds are still modeled exactly.
func Simulate(cfg Config, lat LatencyModel, arrivals []Arrival) (*SimReplay, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	run := runPolicy(cfg, lat, nil, nil, nil, arrivals)

	eng := sim.New()
	engines := make([]*sim.Resource, cfg.Workers)
	for e := range engines {
		engines[e] = eng.Resource(fmt.Sprintf("engine%d", e))
	}
	// Batches launch FIFO, so Seq order is launch order — submitting in
	// Seq order preserves each engine stream's true FIFO order.
	tasks := make([]*sim.Task, len(run.Batches))
	for i := range run.Batches {
		b := &run.Batches[i]
		closer := eng.Task(
			fmt.Sprintf("close%d", b.Seq),
			eng.Resource(fmt.Sprintf("closer%d", b.Seq)),
			b.CloseSec,
		)
		tasks[i] = eng.Task(
			fmt.Sprintf("batch%d", b.Seq),
			engines[b.Engine],
			lat.BatchSec(b.Kinds),
			closer,
		)
	}
	eng.Run()

	rep := &SimReplay{
		Run:             run,
		DispatchWaitSec: make([]float64, len(run.Batches)),
		EngineBusySec:   make([]float64, cfg.Workers),
	}
	for i, t := range tasks {
		b := &run.Batches[i]
		//statgate:allow floateq — the sanctioned bitwise agreement check: policy and sim must agree exactly
		if t.Start != b.StartSec || t.End != b.DoneSec {
			return nil, fmt.Errorf(
				"serve: sim replay diverged on batch %d: policy [%v,%v], sim [%v,%v]",
				b.Seq, b.StartSec, b.DoneSec, t.Start, t.End)
		}
		rep.DispatchWaitSec[i] = t.QueueDelay()
	}
	for e, r := range engines {
		rep.EngineBusySec[e] = eng.BusyTime(r)
	}
	return rep, nil
}
