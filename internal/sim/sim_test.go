package sim

import (
	"math"
	"testing"
)

func TestSerialChain(t *testing.T) {
	e := New()
	r := e.Resource("compute")
	a := e.Task("a", r, 1)
	b := e.Task("b", r, 2, a)
	c := e.Task("c", r, 3, b)
	ms := e.Run()
	if ms != 6 {
		t.Fatalf("makespan=%v want 6", ms)
	}
	if a.Start != 0 || b.Start != 1 || c.Start != 3 {
		t.Fatalf("starts: %v %v %v", a.Start, b.Start, c.Start)
	}
}

func TestFIFOWithoutExplicitDeps(t *testing.T) {
	// Same-stream tasks serialize even without dependencies.
	e := New()
	r := e.Resource("stream")
	e.Task("a", r, 5)
	b := e.Task("b", r, 1)
	ms := e.Run()
	if ms != 6 || b.Start != 5 {
		t.Fatalf("FIFO violated: makespan=%v b.Start=%v", ms, b.Start)
	}
}

func TestTwoStreamsOverlap(t *testing.T) {
	// Independent work on two streams overlaps fully.
	e := New()
	comp := e.Resource("compute")
	comm := e.Resource("comm")
	e.Task("c1", comp, 4)
	e.Task("m1", comm, 3)
	ms := e.Run()
	if ms != 4 {
		t.Fatalf("makespan=%v want 4 (full overlap)", ms)
	}
	if e.BusyTime(comp) != 4 || e.BusyTime(comm) != 3 {
		t.Fatal("busy accounting wrong")
	}
	if e.IdleTime(comm, ms) != 1 {
		t.Fatalf("comm idle=%v want 1", e.IdleTime(comm, ms))
	}
}

func TestCrossStreamDependency(t *testing.T) {
	// compute waits for a gather on the comm stream: exposure appears.
	e := New()
	comp := e.Resource("compute")
	comm := e.Resource("comm")
	g := e.Task("gather", comm, 2)
	c := e.Task("block", comp, 3, g)
	ms := e.Run()
	if c.Start != 2 || ms != 5 {
		t.Fatalf("start=%v makespan=%v", c.Start, ms)
	}
}

func TestPrefetchPatternOverlapsCommWithCompute(t *testing.T) {
	// The canonical FSDP pattern: AG_i must finish before C_i; AG_{i+1}
	// can run during C_i. With equal durations the pipeline hides all
	// but the first gather.
	e := New()
	comp := e.Resource("compute")
	comm := e.Resource("comm")
	const L = 8
	var prevCompute *Task
	for i := 0; i < L; i++ {
		ag := e.Task("ag", comm, 1)
		deps := []*Task{ag}
		if prevCompute != nil {
			deps = append(deps, prevCompute)
		}
		prevCompute = e.Task("c", comp, 1, deps...)
	}
	ms := e.Run()
	if ms != L+1 {
		t.Fatalf("pipelined makespan=%v want %d", ms, L+1)
	}
}

func TestSerializedPatternNoOverlap(t *testing.T) {
	// Prefetch "None": each gather depends on the previous compute, so
	// the two streams strictly alternate.
	e := New()
	comp := e.Resource("compute")
	comm := e.Resource("comm")
	const L = 8
	var prev *Task
	for i := 0; i < L; i++ {
		var ag *Task
		if prev == nil {
			ag = e.Task("ag", comm, 1)
		} else {
			ag = e.Task("ag", comm, 1, prev)
		}
		prev = e.Task("c", comp, 1, ag)
	}
	ms := e.Run()
	if ms != 2*L {
		t.Fatalf("serialized makespan=%v want %d", ms, 2*L)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	run := func() []float64 {
		e := New()
		a := e.Resource("a")
		b := e.Resource("b")
		t1 := e.Task("t1", a, 1)
		t2 := e.Task("t2", b, 1)
		t3 := e.Task("t3", a, 1, t2)
		t4 := e.Task("t4", b, 1, t1)
		e.Run()
		return []float64{t1.Start, t2.Start, t3.Start, t4.Start}
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("schedule not deterministic")
		}
	}
}

func TestCycleDetection(t *testing.T) {
	e := New()
	r := e.Resource("r")
	q := e.Resource("q")
	// a (on r) depends on b (on q), b depends on a: deadlock.
	a := &Task{}
	b := e.Task("b", q, 1, a)
	*a = Task{Name: "a", Res: r, Dur: 1, Deps: []*Task{b}}
	r.tasks = append(r.tasks, a)
	e.tasks = append(e.tasks, a)
	defer func() {
		if recover() == nil {
			t.Fatal("cycle not detected")
		}
	}()
	e.Run()
}

func TestInvalidDurationPanics(t *testing.T) {
	e := New()
	r := e.Resource("r")
	for _, d := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("duration %v accepted", d)
				}
			}()
			e.Task("bad", r, d)
		}()
	}
}

func TestRunTwicePanics(t *testing.T) {
	e := New()
	r := e.Resource("r")
	e.Task("a", r, 1)
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run accepted")
		}
	}()
	e.Run()
}

func TestZeroDurationTasks(t *testing.T) {
	e := New()
	r := e.Resource("r")
	a := e.Task("a", r, 0)
	b := e.Task("b", r, 0, a)
	if ms := e.Run(); ms != 0 {
		t.Fatalf("makespan=%v", ms)
	}
	if b.Start != 0 {
		t.Fatal("zero tasks should chain at t=0")
	}
}

func TestMakespanEqualsCriticalPath(t *testing.T) {
	// Diamond: a → (b, c) → d on independent streams; critical path is
	// a + max(b, c) + d.
	e := New()
	r1 := e.Resource("r1")
	r2 := e.Resource("r2")
	a := e.Task("a", r1, 2)
	b := e.Task("b", r1, 3, a)
	c := e.Task("c", r2, 5, a)
	d := e.Task("d", r2, 1, b, c)
	ms := e.Run()
	if ms != 2+5+1 {
		t.Fatalf("makespan=%v want 8", ms)
	}
	if d.Start != 7 {
		t.Fatalf("d.Start=%v", d.Start)
	}
}
