// Package sim is a small deterministic discrete-event engine for
// modeling the per-step execution of distributed training. It models
// exactly what a GPU runtime provides: serial in-order streams
// (resources) onto which tasks are submitted, with cross-stream
// dependencies (events). A task starts when (a) every dependency has
// finished and (b) all earlier tasks submitted to the same stream have
// finished — the FIFO semantics of CUDA/HIP streams and the RCCL
// communication stream.
//
// The FSDP simulator (internal/fsdp) builds one task graph per training
// step: compute tasks for each transformer block's forward/backward on
// the compute stream, all-gather/reduce-scatter/all-reduce tasks on the
// communication stream, with dependencies encoding the chosen sharding
// strategy and prefetch policy. The makespan of the graph is the step
// time; per-stream busy time yields compute/communication exposure.
package sim

import (
	"fmt"
	"math"
)

// Resource is a serial FIFO stream.
type Resource struct {
	Name  string
	index int
	tasks []*Task
}

// Task is one unit of work on a resource.
type Task struct {
	Name string
	Res  *Resource
	Dur  float64
	Deps []*Task

	// Filled by Run.
	Start, End float64
	scheduled  bool
}

// Engine owns resources and tasks for one simulation.
type Engine struct {
	resources []*Resource
	tasks     []*Task
	ran       bool
}

// New creates an empty engine.
func New() *Engine { return &Engine{} }

// Resource registers a new serial stream.
func (e *Engine) Resource(name string) *Resource {
	r := &Resource{Name: name, index: len(e.resources)}
	e.resources = append(e.resources, r)
	return r
}

// Task submits a task to a resource in program order. Dependencies may
// live on any resource. Duration must be non-negative and finite.
func (e *Engine) Task(name string, r *Resource, dur float64, deps ...*Task) *Task {
	if dur < 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
		panic(fmt.Sprintf("sim: invalid duration %v for task %s", dur, name))
	}
	t := &Task{Name: name, Res: r, Dur: dur, Deps: deps}
	r.tasks = append(r.tasks, t)
	e.tasks = append(e.tasks, t)
	return t
}

// Run schedules every task and returns the makespan. Because streams
// are FIFO, only the head of each resource queue is ever eligible; the
// scheduler repeatedly starts the eligible head with the earliest
// feasible start time (ties broken by resource registration order),
// which makes the schedule unique and deterministic. Run panics on
// dependency cycles — the corresponding real system would deadlock.
func (e *Engine) Run() float64 {
	if e.ran {
		panic("sim: Run called twice")
	}
	e.ran = true

	heads := make([]int, len(e.resources))
	remaining := len(e.tasks)
	makespan := 0.0
	for remaining > 0 {
		bestRes := -1
		bestStart := math.Inf(1)
		for ri, r := range e.resources {
			hi := heads[ri]
			if hi >= len(r.tasks) {
				continue
			}
			start, ok := r.tasks[hi].earliestStart(r, hi)
			if !ok {
				continue // blocked on an unscheduled dependency
			}
			if start < bestStart {
				bestRes, bestStart = ri, start
			}
		}
		if bestRes < 0 {
			panic("sim: dependency cycle (no runnable task)")
		}
		t := e.resources[bestRes].tasks[heads[bestRes]]
		t.Start = bestStart
		t.End = bestStart + t.Dur
		t.scheduled = true
		if t.End > makespan {
			makespan = t.End
		}
		heads[bestRes]++
		remaining--
	}
	return makespan
}

// earliestStart computes when the head task could begin, or ok=false if
// a dependency has not been scheduled yet.
func (t *Task) earliestStart(r *Resource, head int) (float64, bool) {
	start := 0.0
	if head > 0 {
		prev := r.tasks[head-1]
		if !prev.scheduled {
			return 0, false
		}
		start = prev.End
	}
	for _, d := range t.Deps {
		if !d.scheduled {
			return 0, false
		}
		if d.End > start {
			start = d.End
		}
	}
	return start, true
}

// QueueDelay returns how long the task sat runnable before its
// resource got to it: Start minus the latest dependency End (or minus
// zero when the task has no dependencies). Only meaningful after Run.
// The serving simulator reads this off its batch tasks as the
// dispatch-queue wait — a closed batch is runnable the moment its
// members arrived, and any extra time is the engine being busy.
func (t *Task) QueueDelay() float64 {
	ready := 0.0
	for _, d := range t.Deps {
		if d.End > ready {
			ready = d.End
		}
	}
	d := t.Start - ready
	if d < 0 {
		return 0
	}
	return d
}

// BusyTime returns the total scheduled duration on r.
func (e *Engine) BusyTime(r *Resource) float64 {
	var s float64
	for _, t := range r.tasks {
		s += t.Dur
	}
	return s
}

// IdleTime returns makespan minus busy time for r (clamped at 0).
func (e *Engine) IdleTime(r *Resource, makespan float64) float64 {
	idle := makespan - e.BusyTime(r)
	if idle < 0 {
		return 0
	}
	return idle
}

// Tasks returns every submitted task (after Run, with Start/End set).
func (e *Engine) Tasks() []*Task { return e.tasks }
