# Developer entry points for the repro tree. CI runs vet+build+test
# (see .github/workflows/ci.yml); `make bench` records the GEMM and
# attention kernel throughput into BENCH_gemm.json for the perf
# trajectory across PRs.

GO ?= go

.PHONY: build vet test test-all bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -short ./...

test-all:
	$(GO) test ./...

bench:
	$(GO) test -bench 'GEMM' -run NONE -benchtime 2s ./internal/tensor/ ./internal/nn/ > bench_gemm.out
	@cat bench_gemm.out
	$(GO) run ./tools/benchjson < bench_gemm.out > BENCH_gemm.json
	@rm -f bench_gemm.out
	@echo "wrote BENCH_gemm.json"
