# Developer entry points for the repro tree. CI runs vet+build+test, a
# -race job over the distributed layer, the statgate static-analysis
# gate (`make analyze`), and the docs gate (see
# .github/workflows/ci.yml); `make bench` records the GEMM and
# attention kernel throughput into BENCH_gemm.json, `make bench-dist`
# the multi-rank training throughput into BENCH_dist.json, and `make
# bench-serve` the inference-serving latency percentiles into
# BENCH_serve.json for the perf trajectory across PRs.

GO ?= go

.PHONY: build vet test test-all race analyze docs bench bench-dist bench-serve calibrate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -short ./...

test-all:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dist/ ./internal/train/ ./internal/opt/ ./internal/mae/ ./internal/dataload/ ./internal/serve/ ./geofm/ ./cmd/pretrain/ ./cmd/serve/
	$(GO) test -race -run 'BF16|Flash|ExpScaledSub|SoftmaxScaled' ./internal/tensor/
	$(GO) test -race -run 'Fused|AttentionGradients|BlockGradients|InferMatches' ./internal/nn/
	$(GO) test -race -short ./internal/calib/ ./internal/sim/ ./internal/trace/ ./internal/perfmodel/

# Static-analysis gate: the repo-invariant analyzer suite (statgate)
# over the whole tree, plus the analyzers' own fixture tests. Findings
# are suppressible only via //statgate:allow pragmas.
analyze:
	$(GO) test ./internal/analysis/ ./cmd/statgate/ ./tools/docgate/ ./tools/benchjson/
	$(GO) run ./cmd/statgate

# Docs gate: formatting, vet, static analysis, and a package comment on
# every package.
docs: analyze
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then echo "gofmt -l:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./tools/docgate

bench:
	$(GO) test -bench 'GEMM' -run NONE -benchtime 2s ./internal/tensor/ ./internal/nn/ > bench_gemm.out
	@cat bench_gemm.out
	$(GO) run ./tools/benchjson < bench_gemm.out > BENCH_gemm.json
	@rm -f bench_gemm.out
	@echo "wrote BENCH_gemm.json"

bench-dist:
	$(GO) test -bench 'DistStep|ElasticRestart' -run NONE -benchtime 20x ./internal/train/ > bench_dist.out
	@cat bench_dist.out
	$(GO) run ./tools/benchjson < bench_dist.out > BENCH_dist.json
	@rm -f bench_dist.out
	@echo "wrote BENCH_dist.json"

# Serving: the wall-clock server under timed open-loop load (measured
# p50/p99/throughput) plus its deterministic virtual counterpart.
bench-serve:
	$(GO) test -bench 'Serve' -run NONE -benchtime 3x ./internal/serve/ > bench_serve.out
	@cat bench_serve.out
	$(GO) run ./tools/benchjson < bench_serve.out > BENCH_serve.json
	@rm -f bench_serve.out
	@echo "wrote BENCH_serve.json"

# Calibration: measure this host (GEMM roofline, STREAM, collective α–β
# sweeps, train probe) into hwprofile.json, then run the executed
# simulator-validation matrix once and record the agreement statistics
# into BENCH_calib.json. Not part of tier-1 — it times real runs.
calibrate:
	$(GO) run ./cmd/calibrate -quick -out hwprofile.json
	$(GO) test -bench CalibValidate -run NONE -benchtime 1x ./internal/calib/ > bench_calib.out
	@cat bench_calib.out
	$(GO) run ./tools/benchjson < bench_calib.out > BENCH_calib.json
	@rm -f bench_calib.out
	@echo "wrote hwprofile.json and BENCH_calib.json"
