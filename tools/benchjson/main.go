// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so benchmark runs can be committed and
// diffed across PRs (the perf trajectory: see `make bench`, which
// writes BENCH_gemm.json, and `make bench-dist` for BENCH_dist.json).
//
// Each benchmark line becomes {name, iterations, metrics{unit: value}};
// the surrounding goos/goarch/pkg/cpu header lines are captured as
// top-level metadata. Lines that do not parse as benchmark results —
// PASS/FAIL trailers, test log noise, truncated lines, non-numeric
// iteration counts — are skipped rather than failing the conversion, so
// a noisy bench run still yields a valid document.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Meta    map[string]string `json:"meta"`
	Results []result          `json:"results"`
}

// run converts bench output on r into indented JSON on w — the whole
// program, factored for the golden test. Unusable input (empty, or
// pure garbage with no benchmark lines) still produces a valid empty
// document on w; the diagnostics for what was skipped go to diag.
func run(r io.Reader, w, diag io.Writer) error {
	rep := report{Meta: map[string]string{}, Results: []result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	lines, malformed := 0, 0
	for sc.Scan() {
		line := sc.Text()
		lines++
		// goos/goarch/cpu are machine-wide; pkg changes per package
		// block when several packages are benched in one run, so it is
		// recorded per result instead of in the shared metadata.
		for _, key := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Meta[key] = strings.TrimSpace(v)
			}
		}
		if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(v)
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			malformed++
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			malformed++
			continue
		}
		res := result{Name: fields[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
		// Remaining fields come in (value, unit) pairs: ns/op, MB/s,
		// custom metrics like GFLOP/s, B/op, allocs/op.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		rep.Results = append(rep.Results, res)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if malformed > 0 {
		fmt.Fprintf(diag, "benchjson: skipped %d malformed benchmark line(s)\n", malformed)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintf(diag, "benchjson: no benchmark results in %d line(s) of input; writing an empty document\n", lines)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	if err := run(os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
