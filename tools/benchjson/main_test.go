package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestGoldenConversion feeds a fixed `go test -bench` transcript — two
// package blocks, custom metrics, and an assortment of malformed lines
// — through run and pins the exact JSON document. This output gates
// BENCH_gemm.json and BENCH_dist.json, so any drift in parsing or
// encoding fails here first.
func TestGoldenConversion(t *testing.T) {
	const in = `goos: linux
goarch: amd64
pkg: repro/internal/tensor
cpu: AMD EPYC 7713 64-Core Processor
BenchmarkGEMM/256-8   	     100	  11839440 ns/op	        76.02 GFLOP/s	       0 B/op	       0 allocs/op
BenchmarkToBF16-8     	   69642	     17041 ns/op	15382.93 MB/s
PASS
ok  	repro/internal/tensor	2.345s
pkg: repro/internal/train
BenchmarkDistStep/DDP/ranks=2/prec=bf16-8         	      20	   2133304 ns/op	      7525 images/s	       468.8 steps/s
BenchmarkBroken notanumber 12 ns/op
BenchmarkTooShort 42
Benchmark
some stray log line
BenchmarkTrailingValue-8 	      10	      99.5 ns/op	      1234
PASS
`
	const want = `{
  "meta": {
    "cpu": "AMD EPYC 7713 64-Core Processor",
    "goarch": "amd64",
    "goos": "linux"
  },
  "results": [
    {
      "name": "BenchmarkGEMM/256-8",
      "pkg": "repro/internal/tensor",
      "iterations": 100,
      "metrics": {
        "B/op": 0,
        "GFLOP/s": 76.02,
        "allocs/op": 0,
        "ns/op": 11839440
      }
    },
    {
      "name": "BenchmarkToBF16-8",
      "pkg": "repro/internal/tensor",
      "iterations": 69642,
      "metrics": {
        "MB/s": 15382.93,
        "ns/op": 17041
      }
    },
    {
      "name": "BenchmarkDistStep/DDP/ranks=2/prec=bf16-8",
      "pkg": "repro/internal/train",
      "iterations": 20,
      "metrics": {
        "images/s": 7525,
        "ns/op": 2133304,
        "steps/s": 468.8
      }
    },
    {
      "name": "BenchmarkTrailingValue-8",
      "pkg": "repro/internal/train",
      "iterations": 10,
      "metrics": {
        "ns/op": 99.5
      }
    }
  ]
}
`
	var out, diag bytes.Buffer
	if err := run(strings.NewReader(in), &out, &diag); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != want {
		t.Errorf("JSON drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if !strings.Contains(diag.String(), "skipped 3 malformed benchmark line(s)") {
		t.Errorf("diag = %q, want the 3 malformed lines counted", diag.String())
	}
}

// TestServingBenchGolden pins the conversion of `make bench-serve`
// output — the serving benchmarks attach six custom metrics per run
// (req/s, latency percentiles, occupancy, shed, utilization), and
// BENCH_serve.json must carry every one of them.
func TestServingBenchGolden(t *testing.T) {
	const in = `goos: linux
pkg: repro/internal/serve
BenchmarkServe/batch=4/workers=1/load=0.5x-8         	       1	 212404105 ns/op	         3.122 batch-occ	       935.4 p50-ms	      1288 p99-ms	       941.1 req/s	         0 shed	         0.9847 util
BenchmarkServeVirtual/batch=8/rate=2000-8            	     765	   1567768 ns/op	         6.061 batch-occ	         4.289 p50-ms	         7.120 p99-ms	      1873 req/s
PASS
ok  	repro/internal/serve	4.123s
`
	const want = `{
  "meta": {
    "goos": "linux"
  },
  "results": [
    {
      "name": "BenchmarkServe/batch=4/workers=1/load=0.5x-8",
      "pkg": "repro/internal/serve",
      "iterations": 1,
      "metrics": {
        "batch-occ": 3.122,
        "ns/op": 212404105,
        "p50-ms": 935.4,
        "p99-ms": 1288,
        "req/s": 941.1,
        "shed": 0,
        "util": 0.9847
      }
    },
    {
      "name": "BenchmarkServeVirtual/batch=8/rate=2000-8",
      "pkg": "repro/internal/serve",
      "iterations": 765,
      "metrics": {
        "batch-occ": 6.061,
        "ns/op": 1567768,
        "p50-ms": 4.289,
        "p99-ms": 7.12,
        "req/s": 1873
      }
    }
  ]
}
`
	var out, diag bytes.Buffer
	if err := run(strings.NewReader(in), &out, &diag); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != want {
		t.Errorf("BENCH_serve JSON drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if diag.String() != "" {
		t.Errorf("clean input produced diagnostics: %q", diag.String())
	}
}

// TestEmptyInput: no input still yields a valid, empty document (the
// Makefile pipes may legitimately see an empty bench run under -run
// filters) plus a diagnostic saying so.
func TestEmptyInput(t *testing.T) {
	var out, diag bytes.Buffer
	if err := run(strings.NewReader(""), &out, &diag); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "meta": {},
  "results": []
}
`
	if out.String() != want {
		t.Errorf("empty conversion: %s", out.String())
	}
	if !strings.Contains(diag.String(), "no benchmark results in 0 line(s)") {
		t.Errorf("diag = %q, want the empty-document notice", diag.String())
	}
}

// TestMalformedOnly: a stream of exclusively malformed benchmark lines
// converts cleanly to zero results instead of erroring half way, and
// the diagnostics say both what was skipped and that the document is
// empty.
func TestMalformedOnly(t *testing.T) {
	in := "BenchmarkX abc 1 ns/op\nBenchmark\nnoise\nBenchmarkY 12\n"
	var out, diag bytes.Buffer
	if err := run(strings.NewReader(in), &out, &diag); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"results": []`) {
		t.Errorf("malformed-only input produced results: %s", out.String())
	}
	if !strings.Contains(diag.String(), "skipped 3 malformed benchmark line(s)") {
		t.Errorf("diag = %q, want 3 malformed lines counted", diag.String())
	}
	if !strings.Contains(diag.String(), "no benchmark results in 4 line(s)") {
		t.Errorf("diag = %q, want the empty-document notice", diag.String())
	}
}
