// Command docgate is the CI documentation gate: it walks every Go
// package under the repository root and fails (exit 1, one line per
// offender) unless each package carries a package comment — the
// godoc-visible doc block attached to a package clause in at least one
// of its non-test files.
//
// Usage:
//
//	go run ./tools/docgate          # check the tree rooted at .
//	go run ./tools/docgate ./...    # same; a path argument sets the root
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 && os.Args[1] != "./..." {
		root = os.Args[1]
	}
	// dir → true once a package comment is seen in any non-test file.
	documented := map[string]bool{}
	hasGo := map[string]bool{}

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		hasGo[dir] = true
		if documented[dir] {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docgate:", err)
		os.Exit(1)
	}

	var missing []string
	for dir := range hasGo {
		if !documented[dir] {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	for _, dir := range missing {
		fmt.Printf("docgate: package in %s has no package comment\n", dir)
	}
	if len(missing) > 0 {
		os.Exit(1)
	}
	fmt.Printf("docgate: %d packages documented\n", len(hasGo))
}
