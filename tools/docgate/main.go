// Command docgate is the CI documentation gate: it walks every Go
// package under the repository root and fails (exit 1, one line per
// offender) unless each package carries a package comment — the
// godoc-visible doc block attached to a package clause in at least one
// of its non-test files.
//
// Usage:
//
//	go run ./tools/docgate          # check the tree rooted at .
//	go run ./tools/docgate ./...    # same; a path argument sets the root
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 && os.Args[1] != "./..." {
		root = os.Args[1]
	}
	os.Exit(run(root, os.Stdout, os.Stderr))
}

// run is the whole gate, factored for the golden test: it walks root
// and writes one line per undocumented package to stdout, returning
// the process exit code.
func run(root string, stdout, stderr io.Writer) int {
	// dir → true once a package comment is seen in any non-test file.
	documented := map[string]bool{}
	hasGo := map[string]bool{}

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip hidden and testdata subtrees — but never the walk
			// root itself, which may legitimately be (or live under) a
			// directory with such a name when a test points the gate at
			// a fixture.
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		hasGo[dir] = true
		if documented[dir] {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "docgate:", err)
		return 1
	}

	var missing []string
	for dir := range hasGo {
		if !documented[dir] {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	for _, dir := range missing {
		fmt.Fprintf(stdout, "docgate: package in %s has no package comment\n", dir)
	}
	if len(missing) > 0 {
		return 1
	}
	fmt.Fprintf(stdout, "docgate: %d packages documented\n", len(hasGo))
	return 0
}
