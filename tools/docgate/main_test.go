package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// The fixtures mirror the analyzer testdata layout: one tree that must
// pass the gate and one with a deliberately undocumented package.

func runOn(t *testing.T, root string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(root, &out, &errb)
	return out.String(), errb.String(), code
}

func TestDocsOK(t *testing.T) {
	out, stderr, code := runOn(t, filepath.Join("testdata", "docs_ok"))
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if want := "docgate: 2 packages documented\n"; out != want {
		t.Errorf("stdout = %q, want %q", out, want)
	}
}

func TestDocsMissing(t *testing.T) {
	root := filepath.Join("testdata", "docs_missing")
	out, _, code := runOn(t, root)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s", code, out)
	}
	want := "docgate: package in " + filepath.Join(root, "undoc") + " has no package comment\n"
	if out != want {
		t.Errorf("stdout = %q, want %q", out, want)
	}
}

// TestRootNamedTestdata pins the walk-root fix: pointing the gate at a
// directory literally named testdata must walk it, not skip it.
func TestRootNamedTestdata(t *testing.T) {
	out, _, code := runOn(t, "testdata")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (the undocumented fixture package must be found)\nstdout:\n%s", code, out)
	}
	if !strings.Contains(out, "undoc has no package comment") {
		t.Errorf("stdout = %q, want the undoc fixture flagged", out)
	}
}

// TestRealTree runs the gate over the enclosing repo: the tree this
// test ships in must stay documented.
func TestRealTree(t *testing.T) {
	out, stderr, code := runOn(t, filepath.Join("..", ".."))
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
}
