// Package sub is a documented subpackage of the docs_ok fixture.
package sub
