// Package docsok is a docgate fixture: every package here carries a
// package comment.
package docsok
