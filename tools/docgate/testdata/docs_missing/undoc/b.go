package undoc

// B exists so the file is not empty; the package comment is what is
// deliberately missing.
func B() int { return 0 }
