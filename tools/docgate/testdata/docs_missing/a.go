// Package docsmissing is a docgate fixture: this file is documented,
// but the undoc subpackage is not.
package docsmissing
