// Benchmarks regenerating every table and figure of the paper, one
// bench per artifact, plus the ablation benches called out in
// DESIGN.md. Figure benches report the headline quantity (images/s of
// the configuration the paper highlights) as a custom metric, so
// `go test -bench=. -benchmem` doubles as a reproduction run.
package repro

import (
	"strconv"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fsdp"
	"repro/internal/geodata"
	"repro/internal/hw"
	"repro/internal/mae"
	"repro/internal/perfmodel"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/train"
	"repro/internal/vit"
)

// ---- Table I ----------------------------------------------------------

func BenchmarkTableI_ParamCount(b *testing.B) {
	var last int64
	for i := 0; i < b.N; i++ {
		for _, cfg := range vit.TableI {
			last = cfg.EncoderParams()
		}
	}
	b.ReportMetric(float64(last)/1e6, "ViT15B_Mparams")
}

// ---- Table II ---------------------------------------------------------

func BenchmarkTableII_DatasetGen(b *testing.B) {
	suite := geodata.NewSuite(10, 32, 3, 1)
	buf := make([]float32, suite.Pretrain.Gen.ImageLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite.Pretrain.TrainSample(i%suite.Pretrain.TrainCount, buf)
	}
}

// ---- Figure 1 ----------------------------------------------------------

func BenchmarkFig1_WeakScalingMAE3B(b *testing.B) {
	var gap64 float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig1Experiment(nil, perfmodel.Precision{})
		if err != nil {
			b.Fatal(err)
		}
		gapRow := t.Rows[len(t.Rows)-1]
		gap64 = atof(b, gapRow[len(gapRow)-1])
	}
	b.ReportMetric(gap64, "comm_gap_pct_64nodes")
}

// ---- Figure 2 ----------------------------------------------------------

func BenchmarkFig2_PrefetchConfigs(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig2Experiment()
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, row := range t.Rows {
			if v := atof(b, row[3]); v > best {
				best = v
			}
		}
	}
	b.ReportMetric(best, "best_ips_5B_8nodes")
}

// ---- Figure 3 ----------------------------------------------------------

func BenchmarkFig3_WeakScalingSmall(b *testing.B) {
	m := hw.Frontier()
	w := perfmodel.ViTWorkload(vit.ViT3B, 32)
	var ips float64
	for i := 0; i < b.N; i++ {
		r, err := fsdp.Simulate(w, m, 64, fsdp.BestPractice(fsdp.HybridShard, 1))
		if err != nil {
			b.Fatal(err)
		}
		ips = r.ImagesPerSec
	}
	b.ReportMetric(ips, "ips_3B_HYBRID1_64nodes")
}

func BenchmarkFig3_FullTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3Experiment(nil, perfmodel.Precision{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 4 ----------------------------------------------------------

func BenchmarkFig4_LargeModels(b *testing.B) {
	m := hw.Frontier()
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	var ips float64
	for i := 0; i < b.N; i++ {
		r, err := fsdp.Simulate(w, m, 32, fsdp.BestPractice(fsdp.HybridShard, 8))
		if err != nil {
			b.Fatal(err)
		}
		ips = r.ImagesPerSec
	}
	// Paper reports ≈1509 images/s for the best ViT-5B strategy at 32 nodes.
	b.ReportMetric(ips, "ips_5B_best_32nodes")
}

func BenchmarkFig4_FullTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4Experiment(nil, perfmodel.Precision{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_Traces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig4TraceExperiment(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 5 / Table III / Figure 6 ------------------------------------

// BenchmarkFig5_PretrainLoss runs a short real MAE pretraining of the
// smallest analog and reports the final loss (the Figure 5 headline:
// loss decreases, with larger models lower — see cmd/repro for the full
// four-model sweep).
func BenchmarkFig5_PretrainLoss(b *testing.B) {
	s := experiments.TestScale()
	enc, err := vit.Analog("ViT-Base", s.ImageSize, s.PatchSize, s.Channels)
	if err != nil {
		b.Fatal(err)
	}
	suite := geodata.NewSuite(s.SuiteScale, s.ImageSize, s.Channels, s.Seed)
	var final float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := train.PretrainConfig{
			MAE: mae.Default(enc), BatchSize: s.BatchSize, Epochs: 2,
			BaseLR: s.PretrainLR, WeightDecay: 0.05, WarmupEpochs: 1,
			ClipNorm: 5, Workers: s.Workers, Seed: s.Seed, MaxStepsPerEpoch: 4,
		}
		res, err := train.Pretrain(cfg, suite.Pretrain)
		if err != nil {
			b.Fatal(err)
		}
		final = res.LossCurve.Last()
	}
	b.ReportMetric(final, "final_loss")
}

// BenchmarkTableIII_LinearProbe runs the full (test-scale) downstream
// pipeline — four models pretrained and probed on four datasets — and
// reports the top-1 gain of the largest over the smallest model, the
// paper's headline "+30%" number. At test scale (a few images per
// class) this metric swings by ±10% across seeds; the committed
// demo-scale run in EXPERIMENTS.md is the authoritative measurement.
func BenchmarkTableIII_LinearProbe(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDownstream(experiments.TestScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		gain = 0
		for _, d := range res.Datasets {
			gain += 100 * res.AccuracyGain(d) / float64(len(res.Datasets))
		}
	}
	b.ReportMetric(gain, "mean_top1_gain_pct")
}

// BenchmarkFig6_ProbeCurves measures one probing run (frozen features,
// per-epoch accuracy tracking) at test scale.
func BenchmarkFig6_ProbeCurves(b *testing.B) {
	s := experiments.TestScale()
	enc, err := vit.Analog("ViT-Base", s.ImageSize, s.PatchSize, s.Channels)
	if err != nil {
		b.Fatal(err)
	}
	model := mae.New(mae.Default(enc), rng.New(1))
	suite := geodata.NewSuite(s.SuiteScale, s.ImageSize, s.Channels, s.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := probeRun(s, model, enc, suite.Probe[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md §4) -------------------------------------------

// BenchmarkAblation_PrefetchOverlap quantifies design choice 2: the
// BACKWARD_PRE advantage over no prefetch for FULL_SHARD ViT-5B.
func BenchmarkAblation_PrefetchOverlap(b *testing.B) {
	m := hw.Frontier()
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	var speedup float64
	for i := 0; i < b.N; i++ {
		pre, err := fsdp.Simulate(w, m, 8, fsdp.Plan{Strategy: fsdp.FullShard,
			Prefetch: fsdp.BackwardPre, LimitAllGathers: true})
		if err != nil {
			b.Fatal(err)
		}
		none, err := fsdp.Simulate(w, m, 8, fsdp.Plan{Strategy: fsdp.FullShard,
			Prefetch: fsdp.PrefetchNone, LimitAllGathers: true})
		if err != nil {
			b.Fatal(err)
		}
		speedup = pre.ImagesPerSec / none.ImagesPerSec
	}
	b.ReportMetric(speedup, "pre_over_none_speedup")
}

// BenchmarkAblation_DDPBucketSize quantifies design choice 3: DDP
// throughput versus bucket size for ViT-3B at 64 nodes (the paper's
// "bucket too small" conjecture).
func BenchmarkAblation_DDPBucketSize(b *testing.B) {
	m := hw.Frontier()
	w := perfmodel.ViTWorkload(vit.ViT3B, 32)
	var ratio float64
	for i := 0; i < b.N; i++ {
		small, err := fsdp.Simulate(w, m, 64, fsdp.Plan{Strategy: fsdp.DDP, DDPBucketBytes: 25 << 20})
		if err != nil {
			b.Fatal(err)
		}
		large, err := fsdp.Simulate(w, m, 64, fsdp.Plan{Strategy: fsdp.DDP, DDPBucketBytes: 400 << 20})
		if err != nil {
			b.Fatal(err)
		}
		ratio = large.ImagesPerSec / small.ImagesPerSec
	}
	b.ReportMetric(ratio, "bucket400MB_over_25MB")
}

// BenchmarkAblation_HierarchicalLinks quantifies design choice 1:
// HYBRID_8GPUs throughput with the real three-tier interconnect versus
// a degraded machine whose intra-node links are no faster than the NIC
// share.
func BenchmarkAblation_HierarchicalLinks(b *testing.B) {
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	real := hw.Frontier()
	flat := hw.Frontier()
	flat.PairBW = flat.InterBWPerGPU()
	flat.IntraNodeBW = flat.InterBWPerGPU()
	var speedup float64
	for i := 0; i < b.N; i++ {
		fastR, err := fsdp.Simulate(w, real, 16, fsdp.BestPractice(fsdp.HybridShard, 8))
		if err != nil {
			b.Fatal(err)
		}
		slowR, err := fsdp.Simulate(w, flat, 16, fsdp.BestPractice(fsdp.HybridShard, 8))
		if err != nil {
			b.Fatal(err)
		}
		speedup = fastR.ImagesPerSec / slowR.ImagesPerSec
	}
	b.ReportMetric(speedup, "tiered_over_flat_speedup")
}

// BenchmarkAblation_MaskRatio quantifies design choice 5: MAE step cost
// versus mask ratio (the 75% default versus denser visible sets).
func BenchmarkAblation_MaskRatio(b *testing.B) {
	s := experiments.TestScale()
	enc, err := vit.Analog("ViT-Base", s.ImageSize, s.PatchSize, s.Channels)
	if err != nil {
		b.Fatal(err)
	}
	gen := geodata.NewSceneGen(4, s.ImageSize, s.Channels, 1)
	imgs := make([]float32, 8*gen.ImageLen())
	rng.New(2).FillNormal(imgs, 0, 1)
	for _, ratio := range []float64{0.5, 0.75, 0.9} {
		cfg := mae.Default(enc)
		cfg.MaskRatio = ratio
		model := mae.New(cfg, rng.New(3))
		b.Run(maskName(ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = model.Step(imgs, 8)
			}
		})
	}
}

func maskName(r float64) string {
	switch r {
	case 0.5:
		return "mask50"
	case 0.75:
		return "mask75"
	default:
		return "mask90"
	}
}

func probeRun(s experiments.Scale, model *mae.Model, enc vit.Config, ds *geodata.Dataset) (float64, error) {
	cfg := probe.Config{
		BatchSize: s.ProbeBatch,
		Epochs:    s.ProbeEpochs,
		BaseLR:    s.ProbeLR,
		Seed:      s.Seed,
	}
	r, err := probe.Run(cfg, model.Features, enc.Width, ds)
	if err != nil {
		return 0, err
	}
	return r.FinalTop1, nil
}

func atof(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}
