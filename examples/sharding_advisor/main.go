// Sharding advisor: the paper's Section IV-E "practical guide" as a
// tool — for every Table I model, recommend an FSDP configuration for a
// target node count, explain why, and validate the choice against the
// simulated alternatives.
package main

import (
	"fmt"
	"log"

	"repro/geofm"
)

func main() {
	machine := geofm.Frontier()
	const nodes = 32

	for _, model := range geofm.TableI {
		plan, rationale := geofm.Advise(model, nodes)
		fmt.Printf("%s → %s\n  %s\n", model.Name, plan.Name(), rationale)

		// Validate: simulate the recommendation against every strategy
		// the paper studies and report its rank.
		w := geofm.ViTWorkload(model, 32)
		if model.Name == "ViT-15B" {
			w.ActCheckpoint = true
		}
		candidates := []geofm.Plan{
			geofm.BestPractice(geofm.HybridShard, 1),
			geofm.BestPractice(geofm.HybridShard, 2),
			geofm.BestPractice(geofm.HybridShard, 8),
			geofm.BestPractice(geofm.FullShard, 0),
			geofm.BestPractice(geofm.ShardGradOp, 0),
		}
		recommended, err := geofm.Simulate(w, machine, nodes, plan)
		if err != nil {
			log.Fatal(err)
		}
		better := 0
		for _, c := range candidates {
			r, err := geofm.Simulate(w, machine, nodes, c)
			if err != nil {
				log.Fatal(err)
			}
			if r.Fits && r.ImagesPerSec > recommended.ImagesPerSec*1.001 && c.Name() != plan.Name() {
				better++
			}
		}
		fmt.Printf("  simulated: %.0f images/s, %.1f GB/GPU; %d of %d alternatives beat it\n\n",
			recommended.ImagesPerSec, recommended.MemoryPerGPU/1e9, better, len(candidates))
	}
}
