// Classification: compare pretrained versus random-initialization
// features on every downstream dataset of Table II — the experiment
// that motivates foundation models for remote sensing. The pretrained
// encoder should beat the random baseline on each dataset despite the
// probe seeing only a handful of labeled samples per class.
package main

import (
	"fmt"
	"log"

	"repro/geofm"
)

func main() {
	const (
		imageSize = 32
		patchSize = 8
		channels  = 3
		seed      = 42
	)
	enc, err := geofm.Analog("ViT-1B", imageSize, patchSize, channels)
	if err != nil {
		log.Fatal(err)
	}
	suite := geofm.NewSuite(20, imageSize, channels, seed)

	// Pretrain one encoder on the MillionAID analog.
	cfg := geofm.DefaultPretrain(geofm.DefaultMAE(enc))
	cfg.Epochs = 10
	cfg.MaxStepsPerEpoch = 30
	cfg.BatchSize = 16
	cfg.BaseLR = 0.02
	fmt.Printf("pretraining %s on %d images…\n", enc.Name, suite.Pretrain.TrainCount)
	pre, err := geofm.Pretrain(cfg, suite.Pretrain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pretrain loss %.4f → %.4f\n\n", pre.LossCurve.Y[0], pre.LossCurve.Last())

	// A random-weights twin serves as the no-pretraining baseline.
	random := geofm.NewMAE(geofm.DefaultMAE(enc), seed+1)

	fmt.Printf("%-11s %8s %12s %12s %9s\n", "dataset", "classes", "pretrained", "random-init", "chance")
	for _, ds := range suite.Probe {
		probeCfg := geofm.DefaultProbe(32)
		probeCfg.Epochs = 30
		probeCfg.Seed = seed

		got, err := geofm.LinearProbe(probeCfg, pre.Model.Features, enc.Width, ds)
		if err != nil {
			log.Fatal(err)
		}
		base, err := geofm.LinearProbe(probeCfg, random.Features, enc.Width, ds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %8d %11.2f%% %11.2f%% %8.2f%%\n",
			ds.Name, ds.Classes(), 100*got.FinalTop1, 100*base.FinalTop1,
			100.0/float64(ds.Classes()))
	}
}
