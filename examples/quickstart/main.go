// Quickstart: pretrain a small geospatial foundation model with masked
// autoencoding on procedural remote-sensing scenes, inspect the
// reconstruction loss, and adapt it to scene classification with a
// linear probe — the full Section V pipeline in one minute.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/geofm"
)

func main() {
	// 1. Pick a model: the laptop-scale analog of the paper's ViT-Base.
	enc, err := geofm.Analog("ViT-Base", 32, 8, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: width=%d depth=%d heads=%d (%d parameters)\n",
		enc.Name, enc.Width, enc.Depth, enc.Heads, enc.EncoderParams())

	// 2. Build the Table II dataset suite (procedural MillionAID + UCM +
	// AID + NWPU analogs) at 1/20th of the paper's sample counts.
	suite := geofm.NewSuite(20, 32, 3, 42)
	fmt.Printf("pretraining corpus: %s, %d images, %d classes\n",
		suite.Pretrain.Name, suite.Pretrain.TrainCount, suite.Pretrain.Classes())

	// 3. Pretrain with the paper's MAE recipe (75%% masking, AdamW,
	// cosine schedule), shortened for the demo.
	cfg := geofm.DefaultPretrain(geofm.DefaultMAE(enc))
	cfg.Epochs = 8
	cfg.MaxStepsPerEpoch = 25
	cfg.BatchSize = 16
	cfg.BaseLR = 0.02
	cfg.Log = os.Stdout
	res, err := geofm.Pretrain(cfg, suite.Pretrain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pretraining done: loss %.4f → %.4f over %d steps (%.0f img/s)\n",
		res.LossCurve.Y[0], res.LossCurve.Last(), res.Steps, res.ImagesPerSec)

	// 4. Linear probing on UCM: train only a linear classifier on the
	// frozen encoder's mean-pooled features.
	probeCfg := geofm.DefaultProbe(32)
	probeCfg.Epochs = 30
	ucm := suite.Probe[1]
	pr, err := geofm.LinearProbe(probeCfg, res.Model.Features, enc.Width, ucm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linear probe on %s: top-1 %.2f%%  top-5 %.2f%% (chance %.2f%%)\n",
		ucm.Name, 100*pr.FinalTop1, 100*pr.FinalTop5, 100.0/float64(ucm.Classes()))
}
