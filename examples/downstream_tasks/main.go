// Downstream tasks: the paper's "envisioned next steps" (Section VI) as
// working code — after one MAE pretraining run, adapt the encoder to
// (a) few-shot classification at several labeled-data budgets,
// (b) semantic segmentation via per-patch probing against procedural
// per-pixel ground truth, and (c) full fine-tuning, comparing it to the
// linear probe.
package main

import (
	"fmt"
	"log"

	"repro/geofm"
)

func main() {
	const (
		imageSize = 32
		patchSize = 8
		seed      = 42
	)
	enc, err := geofm.Analog("ViT-Huge", imageSize, patchSize, 3)
	if err != nil {
		log.Fatal(err)
	}
	suite := geofm.NewSuite(20, imageSize, 3, seed)

	fmt.Printf("pretraining %s…\n", enc.Name)
	cfg := geofm.DefaultPretrain(geofm.DefaultMAE(enc))
	cfg.Epochs = 10
	cfg.MaxStepsPerEpoch = 30
	cfg.BatchSize = 16
	cfg.BaseLR = 0.02
	pre, err := geofm.Pretrain(cfg, suite.Pretrain)
	if err != nil {
		log.Fatal(err)
	}
	ucm := suite.Probe[1]

	// (a) Few-shot classification.
	fmt.Println("\nfew-shot classification on UCM:")
	probeCfg := geofm.DefaultProbe(16)
	probeCfg.Epochs = 25
	sweep, err := geofm.ShotSweep(probeCfg, pre.Model.Features, enc.Width, ucm, []int{1, 2, 5})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range sweep {
		fmt.Printf("  %-14s top1 %6.2f%%  (train %d / test %d)\n",
			r.Dataset, 100*r.FinalTop1, r.TrainCount, r.TestCount)
	}

	// (b) Semantic segmentation by per-patch probing.
	fmt.Println("\nsemantic segmentation (background / structure / grid):")
	segCfg := geofm.DefaultSeg()
	segCfg.Epochs = 20
	seg, err := geofm.Segment(segCfg, pre.Model.TokenFeatures, enc.Width, ucm, patchSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  patch accuracy %.2f%%  mean IoU %.3f  per-class IoU %v\n",
		100*seg.PatchAccuracy, seg.MeanIoU, fmtIoU(seg.PerClassIoU))

	// (c) Fine-tuning versus linear probing.
	fmt.Println("\nfine-tuning vs linear probing on UCM:")
	lp, err := geofm.LinearProbe(probeCfg, pre.Model.Features, enc.Width, ucm)
	if err != nil {
		log.Fatal(err)
	}
	ftCfg := geofm.DefaultFineTune()
	ftCfg.Epochs = 8
	ftCfg.BaseLR = 0.02
	ft, err := geofm.FineTune(ftCfg, pre.Model, ucm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  linear probe top1 %.2f%%   fine-tune top1 %.2f%%\n",
		100*lp.FinalTop1, 100*ft.FinalTop1)
}

func fmtIoU(v []float64) []string {
	out := make([]string, len(v))
	for i, x := range v {
		out[i] = fmt.Sprintf("%.2f", x)
	}
	return out
}
