// Scaling study: use the Frontier/FSDP simulator to plan a pretraining
// campaign — sweep node counts and sharding strategies for a model that
// does not fit on one GPU, and report throughput, efficiency, memory
// and power, as in the paper's Section IV.
package main

import (
	"fmt"
	"log"

	"repro/geofm"
)

func main() {
	machine := geofm.Frontier()
	model := geofm.ViT5B
	workload := geofm.ViTWorkload(model, 32)

	fmt.Printf("scaling study: %s (%d M parameters) on %s, local batch %d\n\n",
		model.Name, model.EncoderParams()/1e6, machine.Name, workload.LocalBatch)

	plans := []geofm.Plan{
		geofm.BestPractice(geofm.HybridShard, 2),
		geofm.BestPractice(geofm.HybridShard, 8),
		geofm.BestPractice(geofm.FullShard, 0),
		geofm.BestPractice(geofm.ShardGradOp, 0),
	}

	fmt.Printf("%-14s", "nodes")
	for _, p := range plans {
		fmt.Printf("%16s", p.Name())
	}
	fmt.Println()

	nodes := []int{2, 4, 8, 16, 32, 64}
	base := map[string]float64{}
	for _, n := range nodes {
		fmt.Printf("%-14d", n)
		for _, p := range plans {
			r, err := geofm.Simulate(workload, machine, n, p)
			if err != nil {
				log.Fatal(err)
			}
			if _, ok := base[p.Name()]; !ok {
				base[p.Name()] = r.ImagesPerSec / float64(n)
			}
			eff := r.ImagesPerSec / (base[p.Name()] * float64(n))
			fmt.Printf("  %7.0f (%3.0f%%)", r.ImagesPerSec, 100*eff)
		}
		fmt.Println()
	}

	fmt.Println("\nper-GPU footprint and power at 32 nodes:")
	for _, p := range plans {
		r, err := geofm.Simulate(workload, machine, 32, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s  %5.1f GB  %5.0f W  util %3.0f%%  exposed comm %4.0f ms/step\n",
			p.Name(), r.MemoryPerGPU/1e9, r.AvgPowerPerGPU, 100*r.GPUUtilization, 1e3*r.ExposedComm)
	}
}
