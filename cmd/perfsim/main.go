// Command perfsim regenerates the paper's performance tables and
// figures (Table I, Table II, Figures 1–4) from the Frontier/FSDP
// simulator.
//
// Usage:
//
//	perfsim -fig all            # everything
//	perfsim -fig 1 -nodes 1,2,4,8,16,32,64
//	perfsim -fig 4 -trace       # include the rocm-smi trace CSV
//	perfsim -fig 3 -precision fp32   # what-if: full fp32 instead of AMP bf16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fsdp"
	"repro/internal/perfmodel"
)

func main() {
	fig := flag.String("fig", "all", "which artifact to regenerate: table1, table2, 1, 2, 3, 4, minmem, restart, all")
	nodesFlag := flag.String("nodes", "", "comma-separated node counts (default: the paper's sweep)")
	withTrace := flag.Bool("trace", false, "emit the Figure 4 rocm-smi trace CSVs")
	precFlag := flag.String("precision", "bf16", "numeric profile for the scaling figures: bf16 (the paper's AMP recipe) or fp32")
	flag.Parse()

	nodes, err := parseNodes(*nodesFlag)
	if err != nil {
		fatal(err)
	}
	prec, err := perfmodel.PrecisionByName(*precFlag)
	if err != nil {
		fatal(err)
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("table1") {
		fmt.Println(experiments.TableIExperiment().Render())
	}
	if want("table2") {
		fmt.Println(experiments.TableIIExperiment(10, 32, 3, 42).Render())
	}
	if want("1") {
		t, err := experiments.Fig1Experiment(nodes, prec)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if want("2") {
		t, err := experiments.Fig2Experiment()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if want("3") {
		t, err := experiments.Fig3Experiment(nodes, prec)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if want("4") {
		t, err := experiments.Fig4Experiment(nodes, prec)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
		traces, tt, err := experiments.Fig4TraceExperiment()
		if err != nil {
			fatal(err)
		}
		fmt.Println(tt.Render())
		if *withTrace {
			for _, tr := range traces {
				fmt.Println(tr.RenderCSV())
			}
		}
	}
	if want("minmem") {
		fmt.Println(experiments.MinGPUTable().Render())
	}
	if want("restart") {
		t, err := experiments.RestartExperiment(nodes, prec, fsdp.FaultModel{})
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
}

func parseNodes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid node count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfsim:", err)
	os.Exit(1)
}
