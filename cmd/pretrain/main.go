// Command pretrain runs MAE self-supervised pretraining of an analog
// ViT on the procedural MillionAID corpus and writes a checkpoint.
//
// Usage:
//
//	pretrain -model ViT-1B -image 32 -patch 8 -epochs 20 -out vit1b.ckpt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/geofm"
)

func main() {
	model := flag.String("model", "ViT-Base", "Table I model whose analog to train (ViT-Base, ViT-Huge, ViT-1B, ViT-3B)")
	imageSize := flag.Int("image", 32, "image size of the procedural scenes")
	patchSize := flag.Int("patch", 8, "ViT patch size")
	channels := flag.Int("channels", 3, "image channels")
	scale := flag.Int("scale", 10, "Table II sample-count divisor for the corpus")
	epochs := flag.Int("epochs", 20, "pretraining epochs")
	steps := flag.Int("steps", 40, "max steps per epoch (0 = full corpus)")
	batch := flag.Int("batch", 16, "local batch size")
	lr := flag.Float64("lr", 0.02, "base learning rate (linear batch scaling applies)")
	workers := flag.Int("workers", 4, "data loader workers")
	seed := flag.Uint64("seed", 1, "master seed")
	out := flag.String("out", "", "checkpoint output path (optional)")
	flag.Parse()

	enc, err := geofm.Analog(*model, *imageSize, *patchSize, *channels)
	if err != nil {
		fatal(err)
	}
	suite := geofm.NewSuite(*scale, *imageSize, *channels, *seed)

	cfg := geofm.DefaultPretrain(geofm.DefaultMAE(enc))
	cfg.Epochs = *epochs
	cfg.MaxStepsPerEpoch = *steps
	cfg.BatchSize = *batch
	cfg.BaseLR = *lr
	cfg.Workers = *workers
	cfg.Seed = *seed
	cfg.Log = os.Stdout

	fmt.Printf("pretraining %s (%d parameters) on %s (%d images)\n",
		enc.Name, enc.EncoderParams(), suite.Pretrain.Name, suite.Pretrain.TrainCount)
	res, err := geofm.Pretrain(cfg, suite.Pretrain)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("done: %d steps, final loss %.4f, %.1f images/s\n",
		res.Steps, res.LossCurve.Last(), res.ImagesPerSec)

	if *out != "" {
		if err := geofm.SaveCheckpoint(*out, res.Model.Params(), res.Steps); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pretrain:", err)
	os.Exit(1)
}
