// Command pretrain runs MAE self-supervised pretraining of an analog
// ViT on the procedural MillionAID corpus and writes a checkpoint.
// With -ranks N it executes real N-rank data-parallel training over
// in-process ring collectives (internal/dist) and reports the measured
// communication next to the α–β model's prediction for the same calls.
//
// Usage:
//
//	pretrain -model ViT-1B -image 32 -patch 8 -epochs 20 -out vit1b.ckpt
//	pretrain -model ViT-Base -ranks 4 -strategy zero1 -epochs 4
//	pretrain -model ViT-Base -ranks 8 -strategy hybrid:4 -epochs 4
//	pretrain -model ViT-Base -ranks 4 -strategy zero1 -precision bf16
//	pretrain -model ViT-Base -ranks 4 -overlap -accum 4
//
// -batch is the global batch size; with -ranks N each rank trains
// batch/N samples per step. -precision selects fp32 or the executed
// bf16 mixed-precision mode (bf16 wire payloads at half the bytes,
// fp32 master weights, dynamic loss scaling). -overlap launches each
// gradient bucket's collective the moment backward finalizes it
// (bitwise identical to the synchronous schedule; the report's
// exposed-comm line shows what the overlap hid), and -accum N
// accumulates N micro-batches per optimizer step with collectives
// firing once per window. -strategy selects the synchronization
// schedule — the paper's full Section III-C matrix:
//
//	ddp       bucketed gradient all-reduce, replicated optimizer
//	zero1     reduce-scattered gradients, rank-sharded AdamW state,
//	          all-gathered parameters (FSDP's SHARD_GRAD_OP)
//	full      zero1 plus parameter resharding after forward with a
//	          backward re-gather (FSDP's FULL_SHARD)
//	hybrid:k  FULL_SHARD inside k-rank shard groups, gradient-shard
//	          all-reduce across the world/k replica groups
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/geofm"
)

func main() {
	model := flag.String("model", "ViT-Base", "Table I model whose analog to train (ViT-Base, ViT-Huge, ViT-1B, ViT-3B)")
	imageSize := flag.Int("image", 32, "image size of the procedural scenes")
	patchSize := flag.Int("patch", 8, "ViT patch size")
	channels := flag.Int("channels", 3, "image channels")
	scale := flag.Int("scale", 10, "Table II sample-count divisor for the corpus")
	epochs := flag.Int("epochs", 20, "pretraining epochs")
	steps := flag.Int("steps", 40, "max steps per epoch (0 = full corpus)")
	batch := flag.Int("batch", 16, "global batch size (split across ranks)")
	lr := flag.Float64("lr", 0.02, "base learning rate (linear batch scaling applies)")
	workers := flag.Int("workers", 4, "data loader workers per rank")
	seed := flag.Uint64("seed", 1, "master seed")
	ranks := flag.Int("ranks", 1, "data-parallel world size (in-process ranks)")
	strategy := flag.String("strategy", "ddp", "gradient sync for -ranks > 1: "+acceptedStrategies)
	precision := flag.String("precision", "fp32", "numeric mode: "+acceptedPrecisions)
	overlap := flag.Bool("overlap", false, "launch gradient buckets during backward (communication-computation overlap; bitwise identical to the synchronous path)")
	accum := flag.Int("accum", 1, "gradient-accumulation micro-steps per optimizer step (effective batch = -batch × -accum)")
	profile := flag.String("profile", "", "hardware profile (hwprofile.json from cmd/calibrate); prices executed collectives with this host's measured α–β link instead of the default")
	out := flag.String("out", "", "checkpoint output path (optional)")
	flag.Parse()

	enc, err := geofm.Analog(*model, *imageSize, *patchSize, *channels)
	if err != nil {
		fatal(err)
	}
	suite := geofm.NewSuite(*scale, *imageSize, *channels, *seed)

	cfg := geofm.DefaultPretrain(geofm.DefaultMAE(enc))
	cfg.Epochs = *epochs
	cfg.MaxStepsPerEpoch = *steps
	cfg.BatchSize = *batch
	cfg.BaseLR = *lr
	cfg.Workers = *workers
	cfg.Seed = *seed
	cfg.Log = os.Stdout

	fmt.Printf("pretraining %s (%d parameters) on %s (%d images)\n",
		enc.Name, enc.EncoderParams(), suite.Pretrain.Name, suite.Pretrain.TrainCount)

	// Resolve -strategy and -precision up front so a typo fails fast
	// even at -ranks 1.
	plan, err := parsePlan(*strategy)
	if err != nil {
		fatal(err)
	}
	prec, err := parsePrecision(*precision)
	if err != nil {
		fatal(err)
	}

	var link geofm.CommParams
	if *profile != "" {
		link, err = calibratedLink(*profile, prec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("calibrated link: %.1f MiB/s, launch %.1fµs (%s)\n",
			link.Bandwidth/(1<<20), link.Launch*1e6, *profile)
	}

	var res *geofm.PretrainResult
	// BF16 is implemented by the distributed executor (master weights,
	// loss scaling, bf16 wire), so it routes through it even at 1 rank.
	if *ranks > 1 || prec == geofm.BF16 || *overlap || *accum > 1 {
		dcfg := geofm.DistPretrainConfig{PretrainConfig: cfg, Ranks: *ranks, Plan: plan,
			Precision: prec, Overlap: *overlap, AccumSteps: *accum, Link: link}
		fmt.Printf("executing %d ranks, %s, %s, local batch %d, accum %d, overlap %v\n",
			*ranks, plan.Name(), prec, *batch / *ranks, max(*accum, 1), *overlap)
		dres, err := geofm.PretrainDistributed(dcfg, suite.Pretrain)
		if err != nil {
			fatal(err)
		}
		writeComm(os.Stdout, dres)
		fmt.Println(dres.Breakdown(plan.Name()))
		res = &dres.PretrainResult
	} else {
		res, err = geofm.Pretrain(cfg, suite.Pretrain)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("done: %d steps, final loss %.4f, %.1f images/s\n",
		res.Steps, res.LossCurve.Last(), res.ImagesPerSec)

	if *out != "" {
		if err := geofm.SaveCheckpoint(*out, res.Model.Params(), res.Steps); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *out)
	}
}

// acceptedStrategies is the full -strategy vocabulary; parse errors
// quote it so a typo never silently falls back to a default.
const acceptedStrategies = "ddp | zero1 | full | hybrid:k"

// acceptedPrecisions is the full -precision vocabulary.
const acceptedPrecisions = "fp32 | bf16"

// parsePrecision maps a -precision spelling onto its executed mode.
func parsePrecision(s string) (geofm.Precision, error) {
	switch s {
	case "fp32":
		return geofm.FP32, nil
	case "bf16":
		return geofm.BF16, nil
	default:
		return geofm.FP32, fmt.Errorf("unknown -precision %q (want %s)", s, acceptedPrecisions)
	}
}

// parsePlan maps a -strategy spelling onto its fsdp plan.
func parsePlan(s string) (geofm.Plan, error) {
	switch {
	case s == "ddp":
		return geofm.DefaultDDP(), nil
	case s == "zero1":
		return geofm.BestPractice(geofm.ShardGradOp, 0), nil
	case s == "full":
		return geofm.BestPractice(geofm.FullShard, 0), nil
	case strings.HasPrefix(s, "hybrid:"):
		k, err := strconv.Atoi(strings.TrimPrefix(s, "hybrid:"))
		if err != nil || k < 1 {
			return geofm.Plan{}, fmt.Errorf("bad hybrid group in -strategy %q (want %s)", s, acceptedStrategies)
		}
		return geofm.BestPractice(geofm.HybridShard, k), nil
	default:
		return geofm.Plan{}, fmt.Errorf("unknown -strategy %q (want %s)", s, acceptedStrategies)
	}
}

// calibratedLink loads a hardware profile and selects the pooled α–β
// link for the run's wire dtype, so the report's "model" columns price
// collectives with this host's measurement instead of the default.
func calibratedLink(path string, prec geofm.Precision) (geofm.CommParams, error) {
	p, err := geofm.LoadHardwareProfile(path)
	if err != nil {
		return geofm.CommParams{}, err
	}
	dtype := "fp32"
	if prec == geofm.BF16 {
		dtype = "bf16"
	}
	return p.LinkParams(dtype)
}

// writeComm reports each collective's executed traffic next to the α–β
// model's accounting, plus the fsdp simulator's per-step prediction —
// the measured-vs-modeled table a golden test pins so the report cannot
// silently drift.
func writeComm(w io.Writer, res *geofm.DistPretrainResult) {
	steps := float64(res.Steps)
	fmt.Fprintf(w, "collective traffic (%d ranks, %d steps):\n", res.Ranks, res.Steps)
	fmt.Fprintf(w, "  %-15s %8s %14s %14s %12s\n", "op", "calls", "sent MiB/rank", "model MiB", "model time")
	rows := []struct {
		name string
		s    geofm.CommOpStats
	}{
		{"broadcast", res.Comm.Broadcast},
		{"all-reduce", res.Comm.AllReduce},
		{"reduce-scatter", res.Comm.ReduceScatter},
		{"all-gather", res.Comm.AllGather},
	}
	for _, r := range rows {
		if r.s.Calls == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-15s %8d %14.2f %14.2f %10.1fms\n", r.name, r.s.Calls,
			r.s.MeasuredWireBytes/(1<<20), r.s.ModelWireBytes/(1<<20), r.s.ModelTime*1e3)
	}
	if steps > 0 {
		fmt.Fprintf(w, "  per-step bytes vs fsdp simulator: AR %.0f/%.0f  RS %.0f/%.0f  AG %.0f/%.0f\n",
			res.Comm.AllReduce.MeasuredWireBytes/steps, res.Traffic.AllReduceBytes,
			res.Comm.ReduceScatter.MeasuredWireBytes/steps, res.Traffic.ReduceScatterBytes,
			res.Comm.AllGather.MeasuredWireBytes/steps, res.Traffic.AllGatherBytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pretrain:", err)
	os.Exit(1)
}
