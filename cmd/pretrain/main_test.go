package main

import (
	"strings"
	"testing"

	"repro/geofm"
)

// TestParsePlan pins the full accepted -strategy vocabulary and the
// fail-fast behaviour: every rejection names the complete set, so a
// typo can never silently train with a default plan.
func TestParsePlan(t *testing.T) {
	cases := []struct {
		in       string
		strategy geofm.Plan
	}{
		{"ddp", geofm.DefaultDDP()},
		{"zero1", geofm.BestPractice(geofm.ShardGradOp, 0)},
		{"full", geofm.BestPractice(geofm.FullShard, 0)},
		{"hybrid:2", geofm.BestPractice(geofm.HybridShard, 2)},
		{"hybrid:8", geofm.BestPractice(geofm.HybridShard, 8)},
	}
	for _, c := range cases {
		got, err := parsePlan(c.in)
		if err != nil {
			t.Errorf("parsePlan(%q): %v", c.in, err)
			continue
		}
		if got != c.strategy {
			t.Errorf("parsePlan(%q) = %+v, want %+v", c.in, got, c.strategy)
		}
	}
	for _, bad := range []string{"", "DDP", "zero2", "fsdp", "hybrid", "hybrid:", "hybrid:0", "hybrid:-2", "hybrid:x"} {
		_, err := parsePlan(bad)
		if err == nil {
			t.Errorf("parsePlan(%q): expected an error", bad)
			continue
		}
		if !strings.Contains(err.Error(), acceptedStrategies) {
			t.Errorf("parsePlan(%q) error %q does not name the accepted set %q", bad, err, acceptedStrategies)
		}
	}
}

// TestCommTableGolden runs a deterministic 4-rank HYBRID_2GPUs training
// and pins writeComm's report byte for byte: the measured counters, the
// α–β model's pricing on a fixed link, and the per-step comparison
// against the fsdp simulator. Any drift between the executed
// collectives and the simulator's accounting — or any silent format
// change in the report — fails here.
func TestCommTableGolden(t *testing.T) {
	enc := geofm.ViTConfig{Name: "tiny", Width: 16, Depth: 2, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 12, Channels: 3}
	cfg := geofm.DefaultPretrain(geofm.MAEConfig{Encoder: enc,
		DecoderWidth: 8, DecoderDepth: 1, DecoderHeads: 2, MaskRatio: 0.75})
	cfg.Epochs = 1
	cfg.MaxStepsPerEpoch = 2
	cfg.BatchSize = 8
	cfg.Workers = 2
	cfg.Seed = 1
	plan, err := parsePlan("hybrid:2")
	if err != nil {
		t.Fatal(err)
	}
	dcfg := geofm.DistPretrainConfig{
		PretrainConfig: cfg,
		Ranks:          4,
		Plan:           plan,
		// A fixed link so the modeled times are independent of the
		// hw.Frontier defaults.
		Link: geofm.CommParams{Bandwidth: 50e9, HopLat: 1e-6, Launch: 2e-5},
	}
	suite := geofm.NewSuite(1000, 12, 3, 1)
	res, err := geofm.PretrainDistributed(dcfg, suite.Pretrain)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	writeComm(&b, res)
	const golden = `collective traffic (4 ranks, 2 steps):
  op                 calls  sent MiB/rank      model MiB   model time
  broadcast              1           0.03           0.03        0.0ms
  all-reduce             2           0.03           0.03        0.0ms
  reduce-scatter         2           0.03           0.03        0.0ms
  all-gather             4           0.05           0.05        0.1ms
  per-step bytes vs fsdp simulator: AR 13456/13456  RS 13456/13456  AG 26912/26912
`
	if got := b.String(); got != golden {
		t.Errorf("comm table drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestParsePrecision pins the -precision vocabulary and its fail-fast
// behaviour.
func TestParsePrecision(t *testing.T) {
	if p, err := parsePrecision("fp32"); err != nil || p != geofm.FP32 {
		t.Errorf("parsePrecision(fp32) = %v, %v", p, err)
	}
	if p, err := parsePrecision("bf16"); err != nil || p != geofm.BF16 {
		t.Errorf("parsePrecision(bf16) = %v, %v", p, err)
	}
	for _, bad := range []string{"", "FP32", "bf-16", "fp16", "half"} {
		_, err := parsePrecision(bad)
		if err == nil {
			t.Errorf("parsePrecision(%q): expected an error", bad)
			continue
		}
		if !strings.Contains(err.Error(), acceptedPrecisions) {
			t.Errorf("parsePrecision(%q) error %q does not name the accepted set", bad, err)
		}
	}
}

// TestCommTableGoldenBF16 is the bf16 twin of TestCommTableGolden: the
// identical 4-rank HYBRID_2GPUs run under -precision bf16 must report
// exactly half the per-step wire bytes on every gradient/parameter
// collective — measured, modeled and simulated alike.
func TestCommTableGoldenBF16(t *testing.T) {
	enc := geofm.ViTConfig{Name: "tiny", Width: 16, Depth: 2, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 12, Channels: 3}
	cfg := geofm.DefaultPretrain(geofm.MAEConfig{Encoder: enc,
		DecoderWidth: 8, DecoderDepth: 1, DecoderHeads: 2, MaskRatio: 0.75})
	cfg.Epochs = 1
	cfg.MaxStepsPerEpoch = 2
	cfg.BatchSize = 8
	cfg.Workers = 2
	cfg.Seed = 1
	plan, err := parsePlan("hybrid:2")
	if err != nil {
		t.Fatal(err)
	}
	prec, err := parsePrecision("bf16")
	if err != nil {
		t.Fatal(err)
	}
	dcfg := geofm.DistPretrainConfig{
		PretrainConfig: cfg,
		Ranks:          4,
		Plan:           plan,
		Precision:      prec,
		Link:           geofm.CommParams{Bandwidth: 50e9, HopLat: 1e-6, Launch: 2e-5},
	}
	suite := geofm.NewSuite(1000, 12, 3, 1)
	res, err := geofm.PretrainDistributed(dcfg, suite.Pretrain)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	writeComm(&b, res)
	const golden = `collective traffic (4 ranks, 2 steps):
  op                 calls  sent MiB/rank      model MiB   model time
  broadcast              1           0.03           0.03        0.0ms
  all-reduce             2           0.01           0.01        0.0ms
  reduce-scatter         2           0.01           0.01        0.0ms
  all-gather             4           0.03           0.03        0.1ms
  per-step bytes vs fsdp simulator: AR 6728/6728  RS 6728/6728  AG 13456/13456
`
	if got := b.String(); got != golden {
		t.Errorf("comm table drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}
