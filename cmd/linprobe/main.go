// Command linprobe evaluates a pretrained checkpoint by linear probing
// on one of the Table II analog datasets, reporting top-1/top-5
// accuracy per epoch.
//
// Usage:
//
//	linprobe -model ViT-1B -checkpoint vit1b.ckpt -dataset UCM
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/geofm"
)

func main() {
	model := flag.String("model", "ViT-Base", "Table I model whose analog the checkpoint holds")
	imageSize := flag.Int("image", 32, "image size (must match pretraining)")
	patchSize := flag.Int("patch", 8, "patch size (must match pretraining)")
	channels := flag.Int("channels", 3, "image channels (must match pretraining)")
	scale := flag.Int("scale", 10, "Table II sample-count divisor")
	checkpoint := flag.String("checkpoint", "", "checkpoint path (empty = random weights baseline)")
	dataset := flag.String("dataset", "UCM", "dataset: MillionAID, UCM, AID, NWPU")
	epochs := flag.Int("epochs", 60, "probe epochs")
	batch := flag.Int("batch", 32, "probe batch size")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	enc, err := geofm.Analog(*model, *imageSize, *patchSize, *channels)
	if err != nil {
		fatal(err)
	}
	m := geofm.NewMAE(geofm.DefaultMAE(enc), *seed)
	if *checkpoint != "" {
		step, err := geofm.LoadCheckpoint(*checkpoint, m.Params())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("restored %s at step %d\n", *checkpoint, step)
	} else {
		fmt.Println("no checkpoint: probing random-weight features (baseline)")
	}

	suite := geofm.NewSuite(*scale, *imageSize, *channels, *seed)
	var ds *geofm.Dataset
	for _, d := range suite.Probe {
		if d.Name == *dataset {
			ds = d
		}
	}
	if ds == nil {
		fatal(fmt.Errorf("unknown dataset %q (want MillionAID, UCM, AID or NWPU)", *dataset))
	}

	cfg := geofm.DefaultProbe(*batch)
	cfg.Epochs = *epochs
	cfg.Seed = *seed
	cfg.Log = os.Stdout
	res, err := geofm.LinearProbe(cfg, m.Features, enc.Width, ds)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s: top1 %.2f%%  top5 %.2f%%  (train %d / test %d)\n",
		enc.Name, ds.Name, 100*res.FinalTop1, 100*res.FinalTop5, res.TrainCount, res.TestCount)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "linprobe:", err)
	os.Exit(1)
}
