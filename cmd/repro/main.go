// Command repro regenerates every table and figure of the paper in one
// run: the simulator-backed performance artifacts (Table I/II,
// Figures 1–4) and the real-training downstream artifacts (Figure 5,
// Figure 6, Table III) at a chosen scale.
//
// Usage:
//
//	repro                 # everything at demo scale (minutes)
//	repro -scale test     # everything at test scale (seconds)
//	repro -skip-training  # simulator artifacts only
//	repro -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/perfmodel"
)

func main() {
	scaleName := flag.String("scale", "demo", "downstream training scale: test (seconds) or demo (minutes)")
	skipTraining := flag.Bool("skip-training", false, "skip the real-training Section V experiments")
	extensions := flag.Bool("extensions", false, "also run the Section VI extension tasks (few-shot, segmentation, fine-tuning)")
	precFlag := flag.String("precision", "bf16", "numeric profile for the simulated scaling figures: bf16 (the paper's) or fp32")
	out := flag.String("out", "", "also write the report to this file")
	verbose := flag.Bool("v", false, "stream per-epoch training logs")
	flag.Parse()

	prec, err := perfmodel.PrecisionByName(*precFlag)
	if err != nil {
		fatal(err)
	}

	var sinks []io.Writer
	sinks = append(sinks, os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)

	fmt.Fprintln(w, "Reproduction of: Pretraining Billion-scale Geospatial Foundational Models on Frontier")
	fmt.Fprintln(w, "(Tsaris et al., IPDPS 2024) — simulator + pure-Go training stack")
	fmt.Fprintln(w)

	fmt.Fprintln(w, experiments.TableIExperiment().Render())
	fmt.Fprintln(w, experiments.TableIIExperiment(10, 32, 3, 42).Render())
	fmt.Fprintln(w, experiments.MinGPUTable().Render())

	run := func(name string, f func() (experiments.Table, error)) {
		t, err := f()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Fprintln(w, t.Render())
	}
	run("fig1", func() (experiments.Table, error) { return experiments.Fig1Experiment(nil, prec) })
	run("fig2", experiments.Fig2Experiment)
	run("fig3", func() (experiments.Table, error) { return experiments.Fig3Experiment(nil, prec) })
	run("fig4", func() (experiments.Table, error) { return experiments.Fig4Experiment(nil, prec) })
	run("fig4-trace", func() (experiments.Table, error) {
		_, t, err := experiments.Fig4TraceExperiment()
		return t, err
	})

	if *skipTraining {
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "test":
		scale = experiments.TestScale()
	case "demo":
		scale = experiments.DemoScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}

	var trainLog io.Writer
	if *verbose {
		trainLog = w
	}
	fmt.Fprintf(w, "== Section V — real training at %q scale ==\n\n", scale.Name)
	res, err := experiments.RunDownstream(scale, trainLog)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(w, res.Fig5Experiment().Render())
	fmt.Fprintln(w, res.TableIIIExperiment().Render())
	fmt.Fprintln(w, res.Fig6Experiment().Render())
	for _, d := range res.Datasets {
		fmt.Fprintf(w, "accuracy gain %s (largest vs smallest model): %+.2f%%\n",
			d, 100*res.AccuracyGain(d))
	}

	if *extensions {
		fmt.Fprintf(w, "\n== Section VI — extension tasks ==\n\n")
		ext, err := experiments.RunExtensions(scale, trainLog)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, ext.ExtensionTable().Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
