package main

import (
	"os"
	"strings"
	"testing"

	"repro/geofm"
)

// tinyServeOptions is a complete serving session small enough to run
// in milliseconds: a 2-layer encoder, a scale-1000 UCM analog for the
// heads, two open-loop rates and a closed-loop tail.
func tinyServeOptions() options {
	enc := geofm.ViTConfig{Name: "tiny", Width: 16, Depth: 2, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 12, Channels: 2}
	return options{
		mae: geofm.MAEConfig{Encoder: enc,
			DecoderWidth: 8, DecoderDepth: 1, DecoderHeads: 2, MaskRatio: 0.75},
		mode:   "virtual",
		rates:  []float64{500, 1500},
		n:      40,
		cfg:    geofm.ServeConfig{MaxBatch: 4, MaxWaitSec: 2e-3, QueueCap: 32, Workers: 1},
		closed: true,
		loop:   geofm.ServeClosedLoopSpec{Clients: 2, PerClient: 5, ThinkSec: 1e-3},
		scale:  1000,
		epochs: 2,
		seed:   1,
	}
}

// tableOf extracts the report table (header row onward) from a serving
// session's output. Only the table is golden-pinned: it is pure
// discrete-event float64 timing, identical on every platform, while
// the preamble's head accuracies ride on fp32 kernel code paths.
func tableOf(t *testing.T, out string) string {
	t.Helper()
	idx := strings.Index(out, "run ")
	if idx < 0 || (idx > 0 && out[idx-1] != '\n') {
		t.Fatalf("no report table in output:\n%s", out)
	}
	return out[idx:]
}

// TestServeTableGolden pins the whole deterministic serving session
// byte for byte: fixed seed + virtual clock + the simulator-priced
// latency curve must reproduce this exact p50/p99/throughput table on
// any host. Any drift in the batcher policy, the latency model, the
// load generator, or the table format fails here.
func TestServeTableGolden(t *testing.T) {
	var b strings.Builder
	if err := run(tinyServeOptions(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"serving tiny with seed-1 weights (no checkpoint)",
		"heads fitted on UCM",
		"batch latency curve: launch ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	const golden = `run                     total served  shed  batch     rps   q_p50ms   q_p99ms   t_p50ms   t_p99ms  util
virtual-rate500            40     40     0   1.90   478.0     1.614     2.000     1.917     2.303  0.08
virtual-rate1500           40     40     0   3.08  1394.4     0.538     2.000     0.842     2.303  0.14
closed-2x5                 10     10     0   2.00   644.8     2.000     2.000     2.302     2.302  0.10
`
	if got := tableOf(t, out); got != golden {
		t.Errorf("serving table drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestServeTableDeterministic reruns the identical session and demands
// byte-identical full output (preamble included) — the virtual mode's
// whole point.
func TestServeTableDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run(tinyServeOptions(), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(tinyServeOptions(), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two identical virtual sessions diverged:\n--- first ---\n%s--- second ---\n%s",
			a.String(), b.String())
	}
}

// TestServeWallMode smoke-tests the real goroutine server behind the
// same session driver (numbers carry host noise, so only structure is
// asserted).
func TestServeWallMode(t *testing.T) {
	o := tinyServeOptions()
	o.mode = "wall"
	o.rates = []float64{3000}
	o.n = 12
	o.closed = false
	var b strings.Builder
	if err := run(o, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	table := tableOf(t, out)
	if !strings.Contains(table, "wall-rate3000") {
		t.Errorf("wall run missing from table:\n%s", out)
	}
	if !strings.Contains(table, "    12     12     0") {
		t.Errorf("wall run did not serve all 12 requests:\n%s", table)
	}
}

// TestServeFromCheckpoint round-trips both on-disk formats through
// -ckpt: the named-parameter snapshot `pretrain -out` writes, and a
// distributed TrainState envelope. Identical weights by either route
// must produce the identical deterministic session.
func TestServeFromCheckpoint(t *testing.T) {
	o := tinyServeOptions()
	o.rates = []float64{1500}
	o.n = 20
	o.closed = false

	var want strings.Builder
	if err := run(o, &want); err != nil {
		t.Fatal(err)
	}
	wantTable := tableOf(t, want.String())

	// Named-parameter snapshot of the same seed weights.
	m := geofm.NewServeModel(o.mae, o.seed)
	path := t.TempDir() + "/params.ckpt"
	if err := geofm.SaveCheckpoint(path, m.MAE.Params(), 7); err != nil {
		t.Fatal(err)
	}
	o.ckpt = path
	var got strings.Builder
	if err := run(o, &got); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.String(), "(step 7)") {
		t.Errorf("checkpoint preamble missing step:\n%s", got.String())
	}
	if table := tableOf(t, got.String()); table != wantTable {
		t.Errorf("snapshot-checkpoint session diverged from seed session:\n--- got ---\n%s--- want ---\n%s",
			table, wantTable)
	}

	// A corrupt file must fail naming both formats.
	bad := t.TempDir() + "/bad.ckpt"
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	o.ckpt = bad
	if err := run(o, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "neither a TrainState nor a parameter checkpoint") {
		t.Errorf("corrupt checkpoint: got %v", err)
	}
}

// TestServeBadMode pins the fail-fast on an unknown -mode.
func TestServeBadMode(t *testing.T) {
	o := tinyServeOptions()
	o.mode = "batch"
	var b strings.Builder
	err := run(o, &b)
	if err == nil || !strings.Contains(err.Error(), `unknown -mode "batch"`) {
		t.Errorf("bad mode: got %v", err)
	}
}

// TestParseRates pins the -rates vocabulary.
func TestParseRates(t *testing.T) {
	got, err := parseRates("500, 1000,2e3")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{500, 1000, 2000}
	if len(got) != len(want) {
		t.Fatalf("parseRates: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseRates: got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", ",,", "0", "-5", "500,x"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q): expected an error", bad)
		}
	}
}
