// Command serve runs the inference serving stack over a trained (or
// seed-initialized) encoder: it fits linear probe heads for the
// classification and segmentation workloads, then drives the dynamic
// batcher with a deterministic load generator and prints the measured
// p50/p99 latency, throughput, and batch-occupancy table.
//
// Usage:
//
//	serve -ckpt vit1b.ckpt -rates 500,1000,2000 -n 200
//	serve -model ViT-Base -mode virtual -max-batch 8 -max-wait 2e-3
//	serve -mode wall -workers 2 -rates 1000
//	serve -closed -clients 4 -per-client 25 -think 1e-3
//
// -mode virtual (default) executes requests with real model compute on
// a virtual clock, so every number in the table is bit-for-bit
// reproducible run to run. -mode wall starts the goroutine server and
// submits the same schedule in real time; those numbers carry host
// noise. -profile prices the virtual/simulated batches with a measured
// hardware profile from cmd/calibrate instead of the default host
// assumptions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/geofm"
)

type options struct {
	mae     geofm.MAEConfig
	ckpt    string
	bf16    bool
	mode    string
	rates   []float64
	n       int
	cfg     geofm.ServeConfig
	closed  bool
	loop    geofm.ServeClosedLoopSpec
	scale   int
	epochs  int
	seed    uint64
	profile string
}

func main() {
	model := flag.String("model", "ViT-Base", "Table I model whose analog to serve (ViT-Base, ViT-Huge, ViT-1B, ViT-3B)")
	imageSize := flag.Int("image", 32, "image size of the procedural scenes")
	patchSize := flag.Int("patch", 8, "ViT patch size")
	channels := flag.Int("channels", 3, "image channels")
	ckpt := flag.String("ckpt", "", "training checkpoint to serve (cmd/pretrain -out); fresh seed weights when empty")
	bf16 := flag.Bool("bf16", false, "round the served weights to bf16")
	mode := flag.String("mode", "virtual", "execution mode: virtual (deterministic clock, real compute) or wall (goroutine server, real time)")
	rates := flag.String("rates", "500,1000,2000", "comma-separated open-loop arrival rates to sweep (requests/s)")
	n := flag.Int("n", 200, "requests per open-loop run")
	maxBatch := flag.Int("max-batch", 8, "dynamic batcher: close a batch at this many requests")
	maxWait := flag.Float64("max-wait", 2e-3, "dynamic batcher: close a batch this many seconds after its oldest request")
	queueCap := flag.Int("queue-cap", 64, "admission queue bound; requests beyond it are shed")
	workers := flag.Int("workers", 1, "batch execution engines")
	closed := flag.Bool("closed", false, "append a closed-loop run to the sweep")
	clients := flag.Int("clients", 4, "closed loop: concurrent clients")
	perClient := flag.Int("per-client", 25, "closed loop: requests per client")
	think := flag.Float64("think", 1e-3, "closed loop: think time between a response and the next request (s)")
	scale := flag.Int("scale", 50, "Table II sample-count divisor for the head-fitting dataset")
	epochs := flag.Int("epochs", 5, "probe-head fitting epochs")
	seed := flag.Uint64("seed", 1, "master seed (weights, head fitting, load schedule)")
	profile := flag.String("profile", "", "hardware profile (hwprofile.json from cmd/calibrate) to price virtual/simulated batches")
	flag.Parse()

	enc, err := geofm.Analog(*model, *imageSize, *patchSize, *channels)
	if err != nil {
		fatal(err)
	}
	rateList, err := parseRates(*rates)
	if err != nil {
		fatal(err)
	}
	o := options{
		mae:   geofm.DefaultMAE(enc),
		ckpt:  *ckpt,
		bf16:  *bf16,
		mode:  *mode,
		rates: rateList,
		n:     *n,
		cfg: geofm.ServeConfig{
			MaxBatch:   *maxBatch,
			MaxWaitSec: *maxWait,
			QueueCap:   *queueCap,
			Workers:    *workers,
		},
		closed: *closed,
		loop: geofm.ServeClosedLoopSpec{
			Clients:   *clients,
			PerClient: *perClient,
			ThinkSec:  *think,
		},
		scale:   *scale,
		epochs:  *epochs,
		seed:    *seed,
		profile: *profile,
	}
	if err := run(o, os.Stdout); err != nil {
		fatal(err)
	}
}

// run executes the whole serving session against w (factored out so
// tests can capture the deterministic table).
func run(o options, w io.Writer) error {
	enc := o.mae.Encoder

	var m *geofm.ServeModel
	if o.ckpt != "" {
		loaded, step, err := loadCheckpoint(o)
		if err != nil {
			return err
		}
		m = loaded
		fmt.Fprintf(w, "serving %s from %s (step %d)\n", enc.Name, o.ckpt, step)
	} else {
		m = geofm.NewServeModel(o.mae, o.seed)
		fmt.Fprintf(w, "serving %s with seed-%d weights (no checkpoint)\n", enc.Name, o.seed)
	}

	// Fit the classification and segmentation heads on the UCM analog
	// so Classify/Segment requests are admissible.
	suite := geofm.NewSuite(o.scale, enc.ImageSize, enc.Channels, o.seed)
	ds := suite.Probe[1]
	pcfg := geofm.DefaultProbe(16)
	pcfg.Epochs = o.epochs
	pcfg.Seed = o.seed
	cls, clsRes, err := geofm.FitProbeHead(pcfg, m.MAE.Features, enc.Width, ds)
	if err != nil {
		return err
	}
	scfg := geofm.DefaultSeg()
	scfg.Epochs = o.epochs
	scfg.Seed = o.seed
	seg, segRes, err := geofm.FitSegProbeHead(scfg, m.MAE.TokenFeatures, enc.Width, ds, enc.PatchSize)
	if err != nil {
		return err
	}
	m.AttachHeads(cls, seg)
	fmt.Fprintf(w, "heads fitted on %s: top-1 %.3f, patch-acc %.3f\n", ds.Name, clsRes.FinalTop1, segRes.PatchAccuracy)
	if o.bf16 {
		m.RoundBF16()
		fmt.Fprintln(w, "weights rounded to bf16")
	}

	lat := geofm.DefaultServeLatency(enc)
	if o.profile != "" {
		p, err := geofm.LoadHardwareProfile(o.profile)
		if err != nil {
			return err
		}
		if lat, err = geofm.ServeLatencyFromProfile(p, enc); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "batch latency curve: %s\n\n", lat)

	img := imageFor(ds)
	mix := []geofm.ServeKind{geofm.ServeEmbed, geofm.ServeClassify, geofm.ServeSegment}
	var reports []geofm.ServeReport
	for _, rate := range o.rates {
		arrivals := geofm.ServePoissonArrivals(rate, o.n, mix, img, o.seed)
		label := fmt.Sprintf("%s-rate%g", o.mode, rate)
		switch o.mode {
		case "virtual":
			res, err := geofm.ServeVirtual(o.cfg, lat, m, arrivals)
			if err != nil {
				return err
			}
			reports = append(reports, geofm.ServeSummarize(label, res))
		case "wall":
			rep, err := runWall(o.cfg, m, arrivals, label)
			if err != nil {
				return err
			}
			reports = append(reports, rep)
		default:
			return fmt.Errorf("unknown -mode %q (want virtual or wall)", o.mode)
		}
	}
	if o.closed {
		cl := o.loop
		cl.Mix = mix
		cl.Image = img
		res, err := geofm.ServeClosedLoop(o.cfg, lat, m, cl)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("closed-%dx%d", cl.Clients, cl.PerClient)
		reports = append(reports, geofm.ServeSummarize(label, res))
	}
	fmt.Fprint(w, geofm.ServeRenderTable(reports))
	return nil
}

// loadCheckpoint accepts both on-disk formats: the distributed
// TrainState envelope (multi-rank runs, train.Reshard) and the
// named-parameter snapshot single-rank `pretrain -out` writes.
func loadCheckpoint(o options) (*geofm.ServeModel, int, error) {
	if st, stErr := geofm.LoadTrainState(o.ckpt); stErr == nil {
		m, err := geofm.ServeModelFromState(o.mae, st)
		if err != nil {
			return nil, 0, err
		}
		return m, st.Step, nil
	}
	m := geofm.NewServeModel(o.mae, o.seed)
	step, err := geofm.LoadCheckpoint(o.ckpt, m.MAE.Params())
	if err != nil {
		return nil, 0, fmt.Errorf("%s is neither a TrainState nor a parameter checkpoint: %w", o.ckpt, err)
	}
	return m, step, nil
}

// runWall replays the schedule against the real goroutine server,
// sleeping each request into its slot.
func runWall(cfg geofm.ServeConfig, m *geofm.ServeModel, arrivals []geofm.ServeArrival, label string) (geofm.ServeReport, error) {
	s, err := geofm.NewInferenceServer(cfg, m)
	if err != nil {
		return geofm.ServeReport{}, err
	}
	start := time.Now()
	chans := make([]<-chan *geofm.ServeResponse, len(arrivals))
	for i, a := range arrivals {
		if d := a.AtSec - time.Since(start).Seconds(); d > 0 {
			time.Sleep(time.Duration(d * float64(time.Second)))
		}
		ch, err := s.Submit(a.Kind, a.Img)
		if err != nil {
			return geofm.ServeReport{}, err
		}
		chans[i] = ch
	}
	resps := make([]*geofm.ServeResponse, len(arrivals))
	for i, ch := range chans {
		resps[i] = <-ch
	}
	s.Drain()
	return geofm.ServeSummarizeResponses(label, resps, cfg.Workers), nil
}

// imageFor renders serving payloads from the dataset's test split,
// cycling when the schedule is longer than the split.
func imageFor(ds *geofm.Dataset) func(i int) []float32 {
	return func(i int) []float32 {
		img := make([]float32, ds.Gen.ImageLen())
		ds.TestSample(i%ds.TestCount, img)
		return img
	}
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q in -rates", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-rates named no arrival rates")
	}
	return rates, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
