// Command statgate is the repo-invariant static analysis gate: it
// type-checks the whole tree from source (stdlib go/parser + go/types
// only — no tooling beyond the Go distribution) and runs the
// internal/analysis suite over every package, printing one line per
// finding and exiting non-zero when any survive their pragmas.
//
// Usage:
//
//	go run ./cmd/statgate              # analyze the enclosing module
//	go run ./cmd/statgate -root DIR    # analyze the module rooted at DIR
//	go run ./cmd/statgate -run floateq,mustwait
//	go run ./cmd/statgate -list        # print the analyzer suite
//
// Findings are suppressible only via an explicit pragma on the
// offending line or the line above:
//
//	//statgate:allow <analyzer> — <reason>
//
// `make analyze` and the CI analyze job run this as a merge gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program, factored for the golden test.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("statgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root to analyze (default: the module enclosing the working directory)")
	runList := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "statgate:", err)
			return 2
		}
		mr, err := analysis.FindModuleRoot(wd)
		if err != nil {
			fmt.Fprintln(stderr, "statgate:", err)
			return 2
		}
		*root = mr
	}
	cfg := analysis.Config{Root: *root}
	if *runList != "" {
		as, err := analysis.ByName(strings.Split(*runList, ","))
		if err != nil {
			fmt.Fprintln(stderr, "statgate:", err)
			return 2
		}
		cfg.Analyzers = as
	}
	findings, err := analysis.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "statgate:", err)
		return 2
	}
	for _, f := range findings {
		pos := f.Pos
		if rel, err := filepath.Rel(*root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "statgate: %d finding(s)\n", len(findings))
		return 1
	}
	fmt.Fprintln(stdout, "statgate: tree clean")
	return 0
}
