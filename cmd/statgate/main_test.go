package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// runCapture invokes run() with stdout/stderr redirected to temp files
// and returns both streams plus the exit code.
func runCapture(t *testing.T, args []string) (stdout, stderr string, code int) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	ob, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	eb, err := os.ReadFile(errF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(ob), string(eb), code
}

func TestList(t *testing.T) {
	out, _, code := runCapture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(analysis.All()) {
		t.Fatalf("listed %d analyzers, suite has %d:\n%s", len(lines), len(analysis.All()), out)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	_, stderr, code := runCapture(t, []string{"-run", "nosuch"})
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr = %q", stderr)
	}
}

// TestFindings pins the failure shape on a throwaway module with one
// deliberate floateq violation: root-relative position, analyzer tag,
// count on stderr, exit 1.
func TestFindings(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n")
	writeFile(t, filepath.Join(dir, "bad.go"), `// Package bad has one finding.
package bad

// Eq compares floats exactly.
func Eq(a, b float64) bool { return a == b }
`)
	out, stderr, code := runCapture(t, []string{"-root", dir})
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stdout %q, stderr %q)", code, out, stderr)
	}
	if !strings.Contains(out, "bad.go:5") || !strings.Contains(out, "[floateq]") {
		t.Errorf("stdout = %q, want a root-relative floateq finding at bad.go:5", out)
	}
	if !strings.Contains(stderr, "statgate: 1 finding(s)") {
		t.Errorf("stderr = %q", stderr)
	}
}

// TestTreeClean runs the real gate over the enclosing module: the tree
// this test ships in must exit 0.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree typecheck in short mode")
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	out, stderr, code := runCapture(t, []string{"-root", root})
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if !strings.Contains(out, "statgate: tree clean") {
		t.Errorf("stdout = %q", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
