package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/calib"
	"repro/internal/hw"
)

// syntheticProfile builds a deterministic profile so the CLI tests stay
// hermetic — nothing here is measured.
func syntheticProfile() *calib.HardwareProfile {
	p := &calib.HardwareProfile{
		Host:        hw.Features{Arch: "amd64", OS: "linux", LogicalCores: 8, MaxProcs: 8},
		Ranks:       4,
		CreatedUnix: 1754600000,
		GEMM: calib.Roofline{Points: []calib.GEMMPoint{
			{M: 64, K: 64, N: 64, GFLOPS: 8}, {M: 256, K: 256, N: 256, GFLOPS: 20},
		}},
		Stream:     calib.StreamResult{Elems: 1 << 22, CopyBW: 21e9, ScaleBW: 19e9, TriadBW: 17e9},
		Probe:      calib.TrainProbe{Dim: 80, EffFLOPS: 3.5e9, StepSec: 0.03, Steps: 4},
		Contention: 3.5,
	}
	for _, sp := range []struct {
		op, dtype   string
		phases      float64
		alpha, beta float64
	}{
		{"allreduce", "fp32", 2, 40e-6, 3.2e-9},
		{"allgather", "fp32", 1, 24e-6, 1.6e-9},
	} {
		f := calib.CollectiveFit{Op: sp.op, DType: sp.dtype, Ranks: 4,
			Phases: sp.phases, Alpha: sp.alpha, Beta: sp.beta}
		for _, v := range []float64{4e3, 64e3, 1024e3} {
			f.Points = append(f.Points, calib.SweepPoint{Bytes: v, Sec: sp.alpha + sp.beta*v})
		}
		p.Collectives = append(p.Collectives, f)
	}
	return p
}

// TestPrintSummaryNamesEveryInstrument: the summary must surface each
// measured quantity — roofline, STREAM, every fit, probe, contention —
// so a profile is reviewable without opening the JSON.
func TestPrintSummaryNamesEveryInstrument(t *testing.T) {
	var b strings.Builder
	printSummary(&b, syntheticProfile())
	out := b.String()
	for _, want := range []string{
		"GEMM roofline: peak 20.00 GFLOP/s",
		"256x 256x 256",
		"triad 17.00 GB/s",
		"allreduce",
		"allgather",
		"train probe: 3.50 GFLOP/s",
		"contention: ×3.50",
		"4-rank sweeps",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestProfileFileRoundTripThroughCLIHelpers: the file the command
// writes must load back verbatim through the same loader -validate
// uses.
func TestProfileFileRoundTripThroughCLIHelpers(t *testing.T) {
	p := syntheticProfile()
	path := filepath.Join(t.TempDir(), "hwprofile.json")
	if err := calib.SaveProfileFile(path, p); err != nil {
		t.Fatal(err)
	}
	q, err := calib.LoadProfileFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	printSummary(&a, p)
	printSummary(&b, q)
	if a.String() != b.String() {
		t.Fatalf("summary changed across save/load:\n%s\nvs\n%s", a.String(), b.String())
	}
}
