// Command calibrate measures this host's performance character and
// writes the checksummed hardware profile the simulator consumes in
// place of its asserted Frontier constants: a GEMM roofline over the
// blocked kernels, STREAM copy/scale/triad bandwidth, α–β fits of the
// in-process collectives (fp32 and bf16 wire), an executed train-step
// probe, and the core-oversubscription factor.
//
// Usage:
//
//	calibrate -out hwprofile.json            # full measurement
//	calibrate -quick -out hwprofile.json     # short sweeps (CI smoke)
//	calibrate -profile hwprofile.json -validate
//	calibrate -quick -validate               # measure, then validate
//
// -validate executes the {DDP, ZeRO-1, FULL_SHARD, HYBRID_2} × {fp32,
// bf16} × {sync, overlap} matrix for a few short steps each and
// compares measured step wall-clock, compute and exposed communication
// against the calibrated simulator's prediction; the exit status is
// nonzero if any case falls outside tolerance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/calib"
)

func main() {
	out := flag.String("out", "hwprofile.json", "profile output path (empty = print only)")
	quick := flag.Bool("quick", false, "short sweeps: the CI smoke mode")
	ranks := flag.Int("ranks", 4, "collective-sweep world size")
	load := flag.String("profile", "", "load an existing profile instead of measuring")
	validate := flag.Bool("validate", false, "run the executed simulator-validation matrix")
	steps := flag.Int("steps", 0, "validation steps per case (0 = default)")
	flag.Parse()

	var p *calib.HardwareProfile
	var err error
	if *load != "" {
		p, err = calib.LoadProfileFile(*load)
	} else {
		fmt.Println("calibrating (GEMM roofline, STREAM, collective sweeps, train probe)...")
		p, err = calib.Measure(calib.Options{Ranks: *ranks, Quick: *quick, Now: time.Now()})
	}
	if err != nil {
		fatal(err)
	}
	printSummary(os.Stdout, p)

	if *load == "" && *out != "" {
		if err := calib.SaveProfileFile(*out, p); err != nil {
			fatal(err)
		}
		fmt.Printf("profile written to %s\n", *out)
	}

	if *validate {
		rep, err := calib.Validate(p, calib.ValidateOptions{Steps: *steps})
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.String())
		if n := rep.Failures(); n > 0 {
			fatal(fmt.Errorf("%d validation case(s) outside tolerance", n))
		}
	}
}

// printSummary renders the profile's headline numbers: the roofline
// curve, memory bandwidth, each collective fit, and the two factors
// that anchor the compute term.
func printSummary(w io.Writer, p *calib.HardwareProfile) {
	fmt.Fprintf(w, "host: %s, %d logical cores (GOMAXPROCS %d), %d-rank sweeps\n",
		p.Host.KernelISA(), p.Host.LogicalCores, p.Host.MaxProcs, p.Ranks)
	fmt.Fprintf(w, "GEMM roofline: peak %.2f GFLOP/s\n", p.GEMM.PeakGFLOPS())
	for _, pt := range p.GEMM.Points {
		fmt.Fprintf(w, "  %4dx%4dx%4d  %8.2f GFLOP/s  (%.0f%% of peak)\n",
			pt.M, pt.K, pt.N, pt.GFLOPS, 100*pt.GFLOPS/p.GEMM.PeakGFLOPS())
	}
	fmt.Fprintf(w, "STREAM (%d elems): copy %.2f  scale %.2f  triad %.2f GB/s\n",
		p.Stream.Elems, p.Stream.CopyBW/1e9, p.Stream.ScaleBW/1e9, p.Stream.TriadBW/1e9)
	fmt.Fprintln(w, "collectives (α–β fits):")
	for _, f := range p.Collectives {
		fmt.Fprintf(w, "  %-14s %-5s α %7.1fµs  β %6.3f ns/B  (%.1f MiB/s effective)\n",
			f.Op, f.DType, f.Alpha*1e6, f.Beta*1e9, 1/f.Beta/(1<<20))
	}
	fmt.Fprintf(w, "train probe: %.2f GFLOP/s achieved over %d steps (%.1f ms/step, dim %.0f)\n",
		p.Probe.EffFLOPS/1e9, p.Probe.Steps, p.Probe.StepSec*1e3, p.Probe.Dim)
	fmt.Fprintf(w, "contention: ×%.2f per-stream GEMM slowdown at %d streams\n",
		p.Contention, p.Ranks)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
