package geofm

import (
	"strings"
	"testing"
)

func TestFacadeReExports(t *testing.T) {
	if len(TableI) != 6 {
		t.Fatalf("TableI has %d entries", len(TableI))
	}
	c, err := ModelByName("ViT-5B")
	if err != nil || c.Width != 1792 {
		t.Fatalf("ModelByName: %+v %v", c, err)
	}
}

func TestEndToEndTinyPipeline(t *testing.T) {
	// Smoke test of the documented user journey through the facade
	// only: build analog, pretrain briefly, probe.
	enc, err := Analog("ViT-Base", 16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	suite := NewSuite(200, 16, 3, 7)

	cfg := DefaultPretrain(DefaultMAE(enc))
	cfg.Epochs = 2
	cfg.MaxStepsPerEpoch = 3
	cfg.BatchSize = 8
	cfg.Workers = 2
	res, err := Pretrain(cfg, suite.Pretrain)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LossCurve.Y) != 6 {
		t.Fatalf("loss curve %d points", len(res.LossCurve.Y))
	}

	pc := DefaultProbe(16)
	pc.Epochs = 3
	pr, err := LinearProbe(pc, res.Model.Features, enc.Width, suite.Probe[1]) // UCM
	if err != nil {
		t.Fatal(err)
	}
	if pr.FinalTop1 < 0 || pr.FinalTop1 > 1 {
		t.Fatalf("top1 %v", pr.FinalTop1)
	}
}

func TestSimulateThroughFacade(t *testing.T) {
	r, err := Simulate(ViTWorkload(ViT5B, 32), Frontier(), 8, BestPractice(HybridShard, 8))
	if err != nil {
		t.Fatal(err)
	}
	if r.ImagesPerSec <= 0 {
		t.Fatal("no throughput")
	}
}

func TestAdviseMatchesPaperGuide(t *testing.T) {
	cases := []struct {
		cfg      ViTConfig
		nodes    int
		wantName string
	}{
		{ViTBase, 64, "HYBRID_1GPU"},
		{ViT3B, 64, "HYBRID_1GPU"},
		{ViT5B, 32, "HYBRID_8GPUs"},
		{ViT15B, 64, "SHARD_GRAD_OP"},
	}
	for _, c := range cases {
		plan, why := Advise(c.cfg, c.nodes)
		if plan.Name() != c.wantName {
			t.Errorf("Advise(%s, %d) = %s, want %s", c.cfg.Name, c.nodes, plan.Name(), c.wantName)
		}
		if !strings.Contains(why, c.cfg.Name) {
			t.Errorf("rationale does not mention the model: %q", why)
		}
		if !plan.LimitAllGathers || plan.Prefetch != BackwardPre {
			t.Errorf("Advise(%s) did not apply Section IV-E best practices", c.cfg.Name)
		}
	}
}

func TestAdviseSingleNode5B(t *testing.T) {
	plan, _ := Advise(ViT5B, 1)
	if plan.Strategy != HybridShard || plan.GroupSize < 2 {
		t.Fatalf("single-node 5B advice: %+v", plan)
	}
}

func TestMAEPerfWorkloadFacade(t *testing.T) {
	w := MAEPerfWorkload(ViT3B, 32, 0.75)
	if !w.MAE || w.EncoderTokens >= ViT3B.Tokens() {
		t.Fatalf("MAE workload wrong: %+v", w)
	}
}
