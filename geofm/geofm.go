// Package geofm is the public API of the geospatial foundation-model
// library: pretraining billion-scale-style Vision Transformers with
// masked autoencoding on remote-sensing imagery, adapting them to
// downstream classification via linear probing, serving the trained
// models behind a dynamic batcher, and planning/simulating
// distributed training runs on Frontier-class systems with PyTorch-FSDP
// sharding semantics.
//
// The package re-exports the stable types of the internal
// implementation through aliases, so downstream code imports a single
// package:
//
//	enc, _ := geofm.Analog("ViT-3B", 32, 8, 3)
//	res, _ := geofm.Pretrain(geofm.DefaultPretrain(geofm.DefaultMAE(enc)), dataset)
//	probe, _ := geofm.LinearProbe(geofm.DefaultProbe(256), res.Model.Features, enc.Width, ucm)
//
//	plan, why := geofm.Advise(geofm.ViT5B, 32)     // sharding advisor
//	sim, _ := geofm.Simulate(geofm.ViTWorkload(geofm.ViT5B, 32), geofm.Frontier(), 32, plan)
//
// The serving surface (Serve*) turns a checkpoint into a request-
// driven inference service — embeddings, classification and
// segmentation behind a max-batch/max-wait batcher — with a wall-clock
// server, a deterministic virtual executor, and a paired serving
// simulator (see Example_serving).
package geofm

import (
	"fmt"

	"repro/internal/calib"
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/fsdp"
	"repro/internal/geodata"
	"repro/internal/hw"
	"repro/internal/mae"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/perfmodel"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/train"
	"repro/internal/vit"
)

// ---- Model architectures (Table I) ------------------------------------

// ViTConfig describes a Vision Transformer encoder variant.
type ViTConfig = vit.Config

// The paper's Table I variants.
var (
	ViTBase = vit.ViTBase
	ViTHuge = vit.ViTHuge
	ViT1B   = vit.ViT1B
	ViT3B   = vit.ViT3B
	ViT5B   = vit.ViT5B
	ViT15B  = vit.ViT15B
	// TableI lists all six variants in the paper's order.
	TableI = vit.TableI
)

// ModelByName resolves a Table I variant by its paper name.
func ModelByName(name string) (ViTConfig, error) { return vit.ByName(name) }

// Analog returns a laptop-trainable scaled-down analog of a Table I
// variant (preserving the size ordering), for real training runs.
func Analog(name string, imageSize, patchSize, channels int) (ViTConfig, error) {
	return vit.Analog(name, imageSize, patchSize, channels)
}

// AnalogFamily returns the Base/Huge/1B/3B analogs in order.
func AnalogFamily(imageSize, patchSize, channels int) ([]ViTConfig, error) {
	return vit.AnalogFamily(imageSize, patchSize, channels)
}

// ---- MAE pretraining ---------------------------------------------------

// MAEConfig couples an encoder with masked-autoencoder settings.
type MAEConfig = mae.Config

// MAEModel is a trainable masked autoencoder.
type MAEModel = mae.Model

// DefaultMAE returns the paper's MAE configuration (75% masking,
// lightweight 512×8 decoder) for the given encoder.
func DefaultMAE(enc ViTConfig) MAEConfig { return mae.Default(enc) }

// NewMAE constructs a trainable model with weights from the given seed.
func NewMAE(cfg MAEConfig, seed uint64) *MAEModel { return mae.New(cfg, rng.New(seed)) }

// FlatParamCount returns a model's total trainable element count — the
// paramElems argument PredictStepTraffic expects.
func FlatParamCount(m *MAEModel) int { return opt.FlatDim(m.Params()) }

// PretrainConfig carries pretraining hyper-parameters.
type PretrainConfig = train.PretrainConfig

// PretrainResult bundles the trained model and telemetry.
type PretrainResult = train.PretrainResult

// DefaultPretrain returns the paper's pretraining recipe (AdamW base LR
// 1.5e-4, weight decay 0.05, cosine schedule, 100 epochs).
func DefaultPretrain(m MAEConfig) PretrainConfig { return train.DefaultPretrain(m) }

// Pretrain runs MAE pretraining over the dataset's training split.
func Pretrain(cfg PretrainConfig, ds *Dataset) (*PretrainResult, error) {
	return train.Pretrain(cfg, ds)
}

// SaveCheckpoint persists model parameters to path.
func SaveCheckpoint(path string, params []*nn.Param, step int) error {
	return train.SaveParamsFile(path, params, step)
}

// LoadCheckpoint restores model parameters from path, returning the
// saved step.
func LoadCheckpoint(path string, params []*nn.Param) (int, error) {
	return train.LoadParamsFile(path, params)
}

// ---- Distributed execution (real multi-rank training) ------------------

// DistPretrainConfig configures real multi-rank pretraining: the
// embedded PretrainConfig is global (BatchSize is the global batch,
// split across Ranks), Plan selects the synchronization strategy — the
// full Section III-C matrix executes: DDP-style bucketed all-reduce,
// ZeRO-1 (SHARD_GRAD_OP), FULL_SHARD with parameter resharding between
// forward and backward, and the two-level HYBRID_kGPUs scheme over
// shard/replica subgroup communicators — and Link is the α–β model
// each executed collective is priced against. Overlap launches each
// gradient bucket's collective the moment the layer-granular backward
// finalizes it (bitwise identical to the synchronous schedule),
// AccumSteps accumulates micro-batches into one optimizer step with
// collectives firing once per window, and Throttle realizes the
// modeled collective time as executed delay so the overlap win is
// measurable (DistPretrainResult.Breakdown).
type DistPretrainConfig = train.DistConfig

// DistPretrainResult extends PretrainResult with the world size, the
// measured-vs-modeled collective accounting, and the per-step traffic
// the fsdp simulator predicts for the same plan.
type DistPretrainResult = train.DistResult

// CommStats is the per-collective accounting of an executed run:
// calls, bytes each rank actually sent around the ring, and the α–β
// model's prediction for the same calls.
type CommStats = dist.Stats

// CommOpStats aggregates one collective kind.
type CommOpStats = dist.OpStats

// CommParams bundles link characteristics for the α–β cost model.
type CommParams = comm.Params

// HardwareProfile is a measured performance profile of one host — GEMM
// roofline, STREAM bandwidth, collective α–β fits, executed train-step
// probe — as emitted by `make calibrate` / cmd/calibrate. Its
// LinkParams feed DistPretrainConfig.Link and its MachineFor replaces
// the asserted Frontier constants in Simulate.
type HardwareProfile = calib.HardwareProfile

// LoadHardwareProfile reads and verifies a checksummed hwprofile.json.
func LoadHardwareProfile(path string) (*HardwareProfile, error) {
	return calib.LoadProfileFile(path)
}

// Precision selects the numeric mode of an executed distributed run:
// FP32, or the BF16 mixed-precision recipe the paper trains with (bf16
// working weights and collective payloads at half the wire bytes, fp32
// master weights and Adam state, dynamic loss scaling).
type Precision = train.Precision

// The executed precisions.
const (
	FP32 = train.FP32
	BF16 = train.BF16
)

// LossScaleConfig tunes BF16 dynamic loss scaling (zero fields take
// the defaults: 2¹⁶ initial scale, ×2 growth, ×0.5 backoff).
type LossScaleConfig = train.LossScaleConfig

// TrainState is the resumable mid-run training state a distributed run
// returns (DistPretrainResult.State) and accepts
// (DistPretrainConfig.Resume): fp32 master weights, Adam moments, step
// counters and the loss-scale schedule point. A resumed run continues
// bitwise-identically to one that never stopped.
type TrainState = train.TrainState

// SaveTrainState persists a resumable training state to path.
func SaveTrainState(path string, st *TrainState) error {
	return train.SaveTrainStateFile(path, st)
}

// LoadTrainState restores a resumable training state from path.
func LoadTrainState(path string) (*TrainState, error) {
	return train.LoadTrainStateFile(path)
}

// DefaultDistPretrain returns the paper's pretraining recipe split
// across ranks with the DDP baseline plan.
func DefaultDistPretrain(m MAEConfig, ranks int) DistPretrainConfig {
	return train.DefaultDistPretrain(m, ranks)
}

// PretrainDistributed runs MAE pretraining across in-process goroutine
// ranks with real ring collectives (internal/dist): broadcast-
// synchronized init, rank-sharded sampling, and per-plan gradient /
// optimizer-state / parameter synchronization (the sharded strategies
// reshard parameters through subgroup communicators). An N-rank run
// reproduces the single-rank Pretrain loss trajectory up to float
// reassociation, for every strategy of the matrix.
func PretrainDistributed(cfg DistPretrainConfig, ds *Dataset) (*DistPretrainResult, error) {
	return train.PretrainDistributed(cfg, ds)
}

// ExecBreakdown decomposes an executed run's wall-clock into compute
// and exposed communication (DistPretrainResult.Breakdown) — the
// measured counterpart of the simulator's ComputeTime/ExposedComm
// split, and the quantity the overlap mode shrinks.
type ExecBreakdown = trace.ExecBreakdown

// StepTraffic is the per-rank wire-byte accounting of one step's
// parameter/gradient synchronization.
type StepTraffic = fsdp.Traffic

// PredictStepTraffic returns the per-step collective bytes the Section
// IV simulator charges for a model of paramElems parameters under the
// plan at the given precision's wire width — the numbers an executed
// PretrainDistributed run's measured counters match exactly (BF16 runs
// move exactly half of FP32's bytes).
func PredictStepTraffic(p Plan, world, paramElems int, prec Precision) StepTraffic {
	return fsdp.TrafficPerStep(p, world, paramElems, prec.WireBytes())
}

// ---- Datasets ----------------------------------------------------------

// Dataset is a labeled procedural remote-sensing dataset.
type Dataset = geodata.Dataset

// Suite bundles the pretraining corpus and the four probing datasets of
// Table II (procedural analogs).
type Suite = geodata.Suite

// NewSuite builds Table II analogs at the given scale divisor.
func NewSuite(scale, imageSize, channels int, seed uint64) *Suite {
	return geodata.NewSuite(scale, imageSize, channels, seed)
}

// ---- Linear probing (downstream evaluation) ----------------------------

// ProbeConfig carries linear-probing hyper-parameters.
type ProbeConfig = probe.Config

// ProbeResult is the per-epoch accuracy trajectory of one probe.
type ProbeResult = probe.Result

// FeatureFunc maps image batches to feature matrices.
type FeatureFunc = probe.FeatureFunc

// DefaultProbe returns the paper's probing recipe (LARS, base LR 0.1,
// 100 epochs) for the given global batch.
func DefaultProbe(batch int) ProbeConfig { return probe.Default(batch) }

// LinearProbe trains a linear classifier on frozen features.
func LinearProbe(cfg ProbeConfig, features FeatureFunc, featDim int, ds *Dataset) (*ProbeResult, error) {
	return probe.Run(cfg, features, featDim, ds)
}

// ---- Extended downstream tasks (the paper's envisioned next steps) -----

// FewShot evaluates k-shot adaptation: the probe trains on only `shots`
// labeled examples per class.
func FewShot(cfg ProbeConfig, features FeatureFunc, featDim int, ds *Dataset, shots int) (*ProbeResult, error) {
	return probe.FewShot(cfg, features, featDim, ds, shots)
}

// ShotSweep runs FewShot across several labeled-data budgets.
func ShotSweep(cfg ProbeConfig, features FeatureFunc, featDim int, ds *Dataset, shots []int) ([]*ProbeResult, error) {
	return probe.ShotSweep(cfg, features, featDim, ds, shots)
}

// TokenFeatureFunc maps images to per-patch-token features
// (MAEModel.TokenFeatures satisfies it).
type TokenFeatureFunc = probe.TokenFeatureFunc

// SegConfig configures semantic-segmentation probing.
type SegConfig = probe.SegConfig

// SegResult reports segmentation probing quality (patch accuracy, mIoU).
type SegResult = probe.SegResult

// DefaultSeg returns the segmentation probing recipe.
func DefaultSeg() SegConfig { return probe.DefaultSeg() }

// Segment trains a per-token linear head for semantic segmentation on
// frozen features against the procedural per-pixel ground truth.
func Segment(cfg SegConfig, features TokenFeatureFunc, featDim int, ds *Dataset, patchSize int) (*SegResult, error) {
	return probe.RunSegmentation(cfg, features, featDim, ds, patchSize)
}

// FineTuneConfig configures end-to-end fine-tuning.
type FineTuneConfig = probe.FineTuneConfig

// FineTuneResult reports fine-tuning accuracy per epoch.
type FineTuneResult = probe.FineTuneResult

// DefaultFineTune returns the fine-tuning recipe.
func DefaultFineTune() FineTuneConfig { return probe.DefaultFineTune() }

// FineTune updates the encoder trunk jointly with a fresh classifier
// head (in contrast to LinearProbe's frozen trunk). The model is
// modified in place.
func FineTune(cfg FineTuneConfig, model *MAEModel, ds *Dataset) (*FineTuneResult, error) {
	return probe.FineTune(cfg, model, ds)
}

// ---- Performance planning and simulation -------------------------------

// Machine is a modeled GPU cluster.
type Machine = hw.Machine

// Frontier returns the paper's machine: 8 GCDs/node, 64 GB HBM,
// Infinity Fabric + Slingshot-11.
func Frontier() Machine { return hw.Frontier() }

// Workload describes one rank's per-step training work.
type Workload = perfmodel.Workload

// ViTWorkload profiles supervised-ViT training (Sections IV-B/C/D).
func ViTWorkload(cfg ViTConfig, localBatch int) Workload {
	return perfmodel.ViTWorkload(cfg, localBatch)
}

// MAEPerfWorkload profiles MAE pretraining (Figure 1).
func MAEPerfWorkload(cfg ViTConfig, localBatch int, maskRatio float64) Workload {
	return perfmodel.MAEWorkload(cfg, localBatch, maskRatio)
}

// Plan is one distributed-training configuration.
type Plan = fsdp.Plan

// SimResult is a simulated training-step outcome.
type SimResult = fsdp.Result

// Strategy and prefetch constants.
const (
	DDP         = fsdp.DDP
	NoShard     = fsdp.NoShard
	FullShard   = fsdp.FullShard
	ShardGradOp = fsdp.ShardGradOp
	HybridShard = fsdp.HybridShard

	PrefetchNone = fsdp.PrefetchNone
	BackwardPost = fsdp.BackwardPost
	BackwardPre  = fsdp.BackwardPre
)

// BestPractice returns the Section IV-E recommended configuration for a
// strategy: BACKWARD_PRE prefetch with limit_all_gathers.
func BestPractice(s fsdp.Strategy, group int) Plan { return fsdp.BestPractice(s, group) }

// DefaultDDP returns the Figure 3 DDP baseline configuration (25 MiB
// gradient buckets, BACKWARD_POST).
func DefaultDDP() Plan { return fsdp.DefaultDDP() }

// Simulate models one training step on the machine.
func Simulate(w Workload, m Machine, nodes int, plan Plan) (SimResult, error) {
	return fsdp.Simulate(w, m, nodes, plan)
}

// MinGPUs returns the smallest sharding-group size that fits the
// workload in HBM.
func MinGPUs(w Workload, m Machine) int { return fsdp.MinGPUs(w, m) }

// Advise implements the paper's Section IV-E practical guide: given a
// model and node count it recommends an FSDP plan and explains why.
//
//   - fits on one GCD           → HYBRID_1GPU (pure data parallel via
//     FSDP, per-unit overlapped all-reduce)
//   - fits within one node      → HYBRID_SHARD across the node (model
//     sharding on fast links, data-parallel all-reduce across nodes)
//   - needs half a node or more → SHARD_GRAD_OP (gather once per step,
//     keep params through backward)
func Advise(cfg ViTConfig, nodes int) (Plan, string) {
	m := Frontier()
	w := ViTWorkload(cfg, 32)
	// Models beyond ~4B parameters train with activation checkpointing
	// on the real system (Section IV-D's ViT-15B runs require it).
	if cfg.EncoderParams() > 4e9 {
		w.ActCheckpoint = true
	}
	min := MinGPUs(w, m)
	if min == 0 && !w.ActCheckpoint {
		w.ActCheckpoint = true
		min = MinGPUs(w, m)
	}
	switch {
	case min == 0:
		return BestPractice(FullShard, 0), fmt.Sprintf(
			"%s does not fit even fully sharded at this batch; FULL_SHARD across all %d GCDs minimizes per-GPU state",
			cfg.Name, m.TotalGPUs(nodes))
	case min == 1:
		return BestPractice(HybridShard, 1), fmt.Sprintf(
			"%s fits on a single GCD: HYBRID_1GPU is the fastest data-parallel mode (per-block overlapped all-reduce, no sharding cost)",
			cfg.Name)
	case min <= 2 && nodes > 1:
		return BestPractice(HybridShard, m.GPUsPerNode), fmt.Sprintf(
			"%s fits on %d GCDs: shard within the node (HYBRID_%dGPUs) so only gradient shards cross the slow inter-node network",
			cfg.Name, min, m.GPUsPerNode)
	case min <= 2:
		return BestPractice(HybridShard, min), fmt.Sprintf(
			"%s fits on %d GCDs of a single node: the smallest sharding group minimizes collective cost", cfg.Name, min)
	default:
		return BestPractice(ShardGradOp, 0), fmt.Sprintf(
			"%s needs %d+ GCDs: SHARD_GRAD_OP gathers parameters once per step and scales best (Section IV-D)",
			cfg.Name, min)
	}
}

// ---- Inference serving (internal/serve) --------------------------------

// ServeConfig is the dynamic batcher's policy: max batch size,
// max-wait deadline, bounded admission queue, engine count.
type ServeConfig = serve.Config

// ServeModel is the served artifact: encoder weights plus optional
// fitted probe heads, shared read-only across inference engines.
type ServeModel = serve.Model

// ServeKind selects a request's workload.
type ServeKind = serve.Kind

// The three served workloads.
const (
	ServeEmbed    = serve.Embed
	ServeClassify = serve.Classify
	ServeSegment  = serve.Segment
)

// Server is the wall-clock inference server (Submit/Drain).
type Server = serve.Server

// ServeResponse carries one request's payload and latency trace.
type ServeResponse = serve.Response

// ServeArrival is one scheduled load-generator request.
type ServeArrival = serve.Arrival

// ServeLatencyModel prices one batch execution (launch + per-item).
type ServeLatencyModel = serve.LatencyModel

// ServeRunResult is one complete virtual or simulated serving run.
type ServeRunResult = serve.RunResult

// ServeSimReplay is a serving simulation cross-checked through the
// internal/sim discrete-event engine.
type ServeSimReplay = serve.SimReplay

// ServeReport summarizes a run (p50/p99, throughput, occupancy).
type ServeReport = serve.Report

// ServeClosedLoopSpec describes a closed-loop load test.
type ServeClosedLoopSpec = serve.ClosedLoop

// ProbeHead is a trained linear probe packaged for serving.
type ProbeHead = probe.Head

// DefaultServeConfig returns a modest single-engine batcher.
func DefaultServeConfig() ServeConfig { return serve.DefaultConfig() }

// NewServeModel builds a servable model with fresh seed-derived
// weights (the demo path).
func NewServeModel(cfg MAEConfig, seed uint64) *ServeModel { return serve.NewModel(cfg, seed) }

// ServeModelFromState loads the fp32 master weights of a training
// checkpoint (LoadTrainState) into a servable model.
func ServeModelFromState(cfg MAEConfig, st *TrainState) (*ServeModel, error) {
	return serve.NewModelFromState(cfg, st)
}

// FitProbeHead runs the linear-probing recipe and returns the trained
// head as a servable artifact alongside the accuracy trajectory.
func FitProbeHead(cfg ProbeConfig, features FeatureFunc, featDim int, ds *Dataset) (*ProbeHead, *ProbeResult, error) {
	return probe.FitHead(cfg, features, featDim, ds)
}

// FitSegProbeHead runs the segmentation-probing recipe and returns the
// trained per-token head.
func FitSegProbeHead(cfg SegConfig, features TokenFeatureFunc, featDim int,
	ds *Dataset, patchSize int) (*ProbeHead, *SegResult, error) {
	return probe.FitSegHead(cfg, features, featDim, ds, patchSize)
}

// NewInferenceServer starts the wall-clock server over the shared
// model.
func NewInferenceServer(cfg ServeConfig, m *ServeModel) (*Server, error) {
	return serve.NewServer(cfg, m)
}

// ServeVirtual executes a serving run on a virtual clock: real
// compute, modeled time — deterministic to the last float.
func ServeVirtual(cfg ServeConfig, lat ServeLatencyModel, m *ServeModel, arrivals []ServeArrival) (*ServeRunResult, error) {
	return serve.RunVirtual(cfg, lat, m, arrivals)
}

// ServeSimulate runs the serving simulator (no compute) cross-checked
// against the internal/sim engine.
func ServeSimulate(cfg ServeConfig, lat ServeLatencyModel, arrivals []ServeArrival) (*ServeSimReplay, error) {
	return serve.Simulate(cfg, lat, arrivals)
}

// ServeClosedLoop drives a closed-loop load test through the virtual
// executor.
func ServeClosedLoop(cfg ServeConfig, lat ServeLatencyModel, m *ServeModel, cl ServeClosedLoopSpec) (*ServeRunResult, error) {
	return serve.RunClosedLoop(cfg, lat, m, cl)
}

// ServePoissonArrivals builds a deterministic open-loop Poisson
// request schedule.
func ServePoissonArrivals(rate float64, n int, mix []ServeKind, image func(i int) []float32, seed uint64) []ServeArrival {
	return serve.PoissonArrivals(rate, n, mix, image, seed)
}

// DefaultServeLatency prices batches for enc on the asserted
// laptop-class host.
func DefaultServeLatency(enc ViTConfig) ServeLatencyModel { return serve.DefaultLatency(enc) }

// ServeLatencyFromProfile prices batches with a measured hardware
// profile (cmd/calibrate output) instead of asserted constants.
func ServeLatencyFromProfile(p *HardwareProfile, enc ViTConfig) (ServeLatencyModel, error) {
	return serve.LatencyFromProfile(p, enc)
}

// ServeSummarize reduces a serving run to its report.
func ServeSummarize(label string, res *ServeRunResult) ServeReport {
	return serve.Summarize(label, res)
}

// ServeSummarizeResponses reduces a wall-clock server's responses to a
// report (the goroutine server produces responses, not a RunResult).
func ServeSummarizeResponses(label string, resps []*ServeResponse, workers int) ServeReport {
	return serve.SummarizeResponses(label, resps, workers)
}

// ServeRenderTable formats reports as the fixed-width p50/p99 table
// cmd/serve prints.
func ServeRenderTable(reports []ServeReport) string { return serve.RenderTable(reports) }
