package geofm_test

import (
	"fmt"

	"repro/geofm"
)

// tinyEncoder returns a laptop-instant encoder configuration used by
// the runnable examples (the Table I analogs are bigger than an example
// needs).
func tinyEncoder() geofm.ViTConfig {
	return geofm.ViTConfig{Name: "tiny", Width: 16, Depth: 2, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 12, Channels: 3}
}

func tinyMAE() geofm.MAEConfig {
	return geofm.MAEConfig{Encoder: tinyEncoder(),
		DecoderWidth: 8, DecoderDepth: 1, DecoderHeads: 2, MaskRatio: 0.75}
}

// ExampleAnalog resolves a Table I variant's laptop-trainable analog.
func ExampleAnalog() {
	enc, err := geofm.Analog("ViT-1B", 32, 8, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(enc.Name)
	fmt.Println(enc.EncoderParams() > 0)
	// Output:
	// ViT-1B-analog
	// true
}

// ExampleAdvise asks the Section IV-E practical guide for a sharding
// plan.
func ExampleAdvise() {
	plan, _ := geofm.Advise(geofm.ViT5B, 32)
	fmt.Println(plan.Name())
	// Output:
	// HYBRID_8GPUs
}

// ExampleSimulate models one ViT-3B training step on 8 Frontier nodes.
func ExampleSimulate() {
	res, err := geofm.Simulate(
		geofm.ViTWorkload(geofm.ViT3B, 32),
		geofm.Frontier(), 8,
		geofm.BestPractice(geofm.ShardGradOp, 0))
	if err != nil {
		panic(err)
	}
	fmt.Println("world:", res.World)
	fmt.Println("fits in HBM:", res.Fits)
	fmt.Println("has collective calls:", res.CommCalls > 0)
	// Output:
	// world: 64
	// fits in HBM: true
	// has collective calls: true
}

// ExamplePretrain runs two real MAE pretraining steps on the
// procedural corpus.
func ExamplePretrain() {
	suite := geofm.NewSuite(1000, 12, 3, 1)
	cfg := geofm.DefaultPretrain(tinyMAE())
	cfg.Epochs = 1
	cfg.MaxStepsPerEpoch = 2
	cfg.BatchSize = 8
	res, err := geofm.Pretrain(cfg, suite.Pretrain)
	if err != nil {
		panic(err)
	}
	fmt.Println("steps:", res.Steps)
	fmt.Println("loss positive:", res.LossCurve.Last() > 0)
	// Output:
	// steps: 2
	// loss positive: true
}

// ExamplePretrainDistributed trains the same recipe across two
// in-process ranks and checks the executed collective traffic against
// the simulator's per-step accounting.
func ExamplePretrainDistributed() {
	suite := geofm.NewSuite(1000, 12, 3, 1)
	cfg := geofm.DefaultDistPretrain(tinyMAE(), 2)
	cfg.Epochs = 1
	cfg.MaxStepsPerEpoch = 2
	cfg.BatchSize = 8 // global; 4 per rank
	res, err := geofm.PretrainDistributed(cfg, suite.Pretrain)
	if err != nil {
		panic(err)
	}
	steps := float64(res.Steps)
	fmt.Println("ranks:", res.Ranks)
	fmt.Println("steps:", res.Steps)
	fmt.Println("measured == simulator accounting:",
		res.Comm.AllReduce.MeasuredWireBytes == res.Traffic.AllReduceBytes*steps)
	// Output:
	// ranks: 2
	// steps: 2
	// measured == simulator accounting: true
}

// ExamplePretrainDistributed_fullShard trains with FULL_SHARD: the
// ZeRO-3-style schedule where parameters are resharded after forward
// and re-gathered in backward, so each step moves one gradient
// reduce-scatter and two parameter all-gathers — exactly what the
// simulator charges.
func ExamplePretrainDistributed_fullShard() {
	suite := geofm.NewSuite(1000, 12, 3, 1)
	cfg := geofm.DefaultDistPretrain(tinyMAE(), 4)
	cfg.Epochs = 1
	cfg.MaxStepsPerEpoch = 2
	cfg.BatchSize = 8 // global; 2 per rank
	cfg.Plan = geofm.BestPractice(geofm.FullShard, 0)
	res, err := geofm.PretrainDistributed(cfg, suite.Pretrain)
	if err != nil {
		panic(err)
	}
	steps := float64(res.Steps)
	fmt.Println("strategy:", cfg.Plan.Name())
	fmt.Println("reduce-scatter == simulator:",
		res.Comm.ReduceScatter.MeasuredWireBytes == res.Traffic.ReduceScatterBytes*steps)
	fmt.Println("all-gather == simulator:",
		res.Comm.AllGather.MeasuredWireBytes == res.Traffic.AllGatherBytes*steps)
	fmt.Println("all-gathers per step:", res.Comm.AllGather.Calls/res.Steps)
	// Output:
	// strategy: FULL_SHARD
	// reduce-scatter == simulator: true
	// all-gather == simulator: true
	// all-gathers per step: 2
}

// ExamplePretrainDistributed_hybrid trains with HYBRID_2GPUs on four
// ranks: FULL_SHARD collectives inside each 2-rank shard group plus a
// gradient-shard all-reduce across the two replica groups — the
// two-level scheme that makes the paper's 3B model trainable.
func ExamplePretrainDistributed_hybrid() {
	suite := geofm.NewSuite(1000, 12, 3, 1)
	cfg := geofm.DefaultDistPretrain(tinyMAE(), 4)
	cfg.Epochs = 1
	cfg.MaxStepsPerEpoch = 2
	cfg.BatchSize = 8
	cfg.Plan = geofm.BestPractice(geofm.HybridShard, 2)
	res, err := geofm.PretrainDistributed(cfg, suite.Pretrain)
	if err != nil {
		panic(err)
	}
	steps := float64(res.Steps)
	fmt.Println("strategy:", cfg.Plan.Name())
	fmt.Println("group traffic == simulator:",
		res.Comm.ReduceScatter.MeasuredWireBytes == res.Traffic.ReduceScatterBytes*steps &&
			res.Comm.AllGather.MeasuredWireBytes == res.Traffic.AllGatherBytes*steps)
	fmt.Println("replica all-reduce == simulator:",
		res.Comm.AllReduce.MeasuredWireBytes == res.Traffic.AllReduceBytes*steps)
	// Output:
	// strategy: HYBRID_2GPUs
	// group traffic == simulator: true
	// replica all-reduce == simulator: true
}

// ExamplePredictStepTraffic prints the per-rank wire bytes one step
// moves for a million-parameter model under DDP and ZeRO-1 on 8 ranks,
// in both precisions — bf16 halves every volume.
func ExamplePredictStepTraffic() {
	const elems = 1 << 20
	ddp := geofm.PredictStepTraffic(geofm.DefaultDDP(), 8, elems, geofm.FP32)
	zero1 := geofm.PredictStepTraffic(geofm.BestPractice(geofm.ShardGradOp, 0), 8, elems, geofm.FP32)
	bf := geofm.PredictStepTraffic(geofm.DefaultDDP(), 8, elems, geofm.BF16)
	fmt.Println("ddp all-reduce MiB:", ddp.AllReduceBytes/(1<<20))
	fmt.Println("zero1 reduce-scatter MiB:", zero1.ReduceScatterBytes/(1<<20))
	fmt.Println("zero1 all-gather MiB:", zero1.AllGatherBytes/(1<<20))
	fmt.Println("ddp bf16 all-reduce MiB:", bf.AllReduceBytes/(1<<20))
	// Output:
	// ddp all-reduce MiB: 7
	// zero1 reduce-scatter MiB: 3.5
	// zero1 all-gather MiB: 3.5
	// ddp bf16 all-reduce MiB: 3.5
}

// ExamplePretrainDistributed_bf16 runs the executed mixed-precision
// mode: bf16 payloads on every gradient/parameter collective (half the
// fp32 wire bytes, still exactly the dtype-aware simulator accounting),
// fp32 master weights under dynamic loss scaling.
func ExamplePretrainDistributed_bf16() {
	suite := geofm.NewSuite(1000, 12, 3, 1)
	cfg := geofm.DefaultDistPretrain(tinyMAE(), 4)
	cfg.Epochs = 1
	cfg.MaxStepsPerEpoch = 2
	cfg.BatchSize = 8
	cfg.Plan = geofm.BestPractice(geofm.ShardGradOp, 0)
	cfg.Precision = geofm.BF16
	res, err := geofm.PretrainDistributed(cfg, suite.Pretrain)
	if err != nil {
		panic(err)
	}
	steps := float64(res.Steps)
	fp32 := geofm.PredictStepTraffic(cfg.Plan, cfg.Ranks, geofm.FlatParamCount(res.Model), geofm.FP32)
	fmt.Println("precision:", res.Precision)
	fmt.Println("measured == simulator accounting:",
		res.Comm.ReduceScatter.MeasuredWireBytes == res.Traffic.ReduceScatterBytes*steps &&
			res.Comm.AllGather.MeasuredWireBytes == res.Traffic.AllGatherBytes*steps)
	fmt.Println("bf16 wire bytes are half of fp32:",
		2*res.Traffic.ReduceScatterBytes == fp32.ReduceScatterBytes)
	fmt.Println("loss scale:", res.FinalLossScale)
	// Output:
	// precision: bf16
	// measured == simulator accounting: true
	// bf16 wire bytes are half of fp32: true
	// loss scale: 65536
}

// ExamplePretrainDistributed_overlapAccum runs the overlapped,
// gradient-accumulating schedule: each gradient bucket's collective
// launches the moment the layer-granular backward finalizes it, four
// micro-batches accumulate into every optimizer step, and the result
// is bitwise identical to the synchronous path at exactly the
// simulator's per-step wire bytes.
func ExamplePretrainDistributed_overlapAccum() {
	suite := geofm.NewSuite(1000, 12, 3, 1)
	mk := func(overlap bool) *geofm.DistPretrainResult {
		cfg := geofm.DefaultDistPretrain(tinyMAE(), 2)
		cfg.Epochs = 1
		cfg.MaxStepsPerEpoch = 2
		cfg.BatchSize = 8 // global per micro-step; effective 32 with accum
		cfg.Overlap = overlap
		cfg.AccumSteps = 4
		res, err := geofm.PretrainDistributed(cfg, suite.Pretrain)
		if err != nil {
			panic(err)
		}
		return res
	}
	sync := mk(false)
	over := mk(true)
	steps := float64(over.Steps)
	fmt.Println("optimizer steps:", over.Steps)
	fmt.Println("bitwise identical to synchronous:", over.LossCurve.Last() == sync.LossCurve.Last())
	fmt.Println("bytes == simulator accounting per optimizer step:",
		over.Comm.AllReduce.MeasuredWireBytes == over.Traffic.AllReduceBytes*steps)
	// Output:
	// optimizer steps: 2
	// bitwise identical to synchronous: true
	// bytes == simulator accounting per optimizer step: true
}

// Example_serving runs the inference serving stack on the virtual
// clock: a burst of embedding requests flows through the dynamic
// batcher (close on size or deadline) and every number below is
// exactly reproducible run to run.
func Example_serving() {
	cfg := geofm.ServeConfig{MaxBatch: 4, MaxWaitSec: 1e-3, QueueCap: 16, Workers: 1}
	m := geofm.NewServeModel(tinyMAE(), 1)
	lat := geofm.DefaultServeLatency(tinyMAE().Encoder)
	img := make([]float32, tinyEncoder().ImageSize*tinyEncoder().ImageSize*tinyEncoder().Channels)
	arrivals := make([]geofm.ServeArrival, 6)
	for i := range arrivals {
		arrivals[i] = geofm.ServeArrival{AtSec: float64(i) * 1e-4, Kind: geofm.ServeEmbed, Img: img}
	}
	res, err := geofm.ServeVirtual(cfg, lat, m, arrivals)
	if err != nil {
		panic(err)
	}
	rep := geofm.ServeSummarize("burst", res)
	fmt.Println("served:", rep.Served, "shed:", rep.Shed)
	for _, b := range res.Batches {
		fmt.Printf("batch of %d closed by %s\n", len(b.IDs), b.Reason)
	}
	fmt.Println("embedding width:", len(res.Responses[0].Embedding))
	// Output:
	// served: 6 shed: 0
	// batch of 4 closed by size
	// batch of 2 closed by deadline
	// embedding width: 16
}
